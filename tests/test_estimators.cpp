// Conformance suite for the yield estimator zoo (yield/estimator.hpp): the
// contracts every *registered* estimator must satisfy, enforced by looping
// over the registry rather than naming estimators in each test - a newly
// registered estimator inherits the whole suite for free.
//
//  - clean-sweep Wilson reduction: on a scenario with no failures every
//    estimator's estimate reduces bit-identically to the unweighted
//    Wilson numbers of plain MC;
//  - inflight-window invariance + rerun determinism: the retired prefix,
//    and therefore the whole result, is identical for any streaming window
//    and across reruns with the same seed;
//  - home-scenario sanity: every estimator reaches the CI target on the
//    cheap synthetic bimodal scenario within its cap;
//  - zero-beta bit-identity: the control-variate estimator with an inert
//    control is literally the fail-side estimator.
//
// Plus unit tests for the three newest zoo members' machinery: CE scale
// adaptation and Mahalanobis component merging in the shift fit, and the
// control-variate regression math (hand-computed beta, clamping,
// delegation rules).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "eval/engine.hpp"
#include "mc/yield.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "yield/estimator.hpp"
#include "yield/probe.hpp"
#include "yield/scenarios.hpp"
#include "yield/sequential.hpp"
#include "yield/shift.hpp"
#include "yield/weighted.hpp"

namespace {

using namespace ypm;

// The built-in zoo, spelled out rather than taken from names(): tests may
// register extra estimators in the shared registry, and the conformance
// loops must stay deterministic regardless of test order.
const std::vector<std::string> kBuiltins = {
    "control_variate", "mixture_ce", "mixture_ce_scale",
    "mixture_merge",   "plain_mc",   "single_shift"};

eval::Engine make_engine() {
    eval::EngineConfig config;
    config.cache_capacity = 0;
    return eval::Engine(config);
}

yield::SequentialYieldResult run_estimator(const yield::Scenario& sc,
                                           const std::string& name,
                                           std::size_t inflight = 1) {
    eval::Engine engine = make_engine();
    yield::SequentialConfig base = sc.config;
    base.inflight = inflight;
    return yield::EstimatorRegistry::instance().create(name)->estimate(
        engine, base, sc.specs, sc.factory, sc.dimension, Rng(73));
}

// ---------------------------------------------------------------- registry

TEST(EstimatorRegistry, KnowsTheBuiltinZoo) {
    const auto& registry = yield::EstimatorRegistry::instance();
    const std::vector<std::string> names = registry.names();
    for (const std::string& name : kBuiltins) {
        EXPECT_TRUE(registry.contains(name)) << name;
        const auto estimator = registry.create(name);
        ASSERT_NE(estimator, nullptr);
        EXPECT_EQ(estimator->name(), name);
        EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
    }
}

TEST(EstimatorRegistry, RejectsUnknownDuplicateAndMalformed) {
    auto& registry = yield::EstimatorRegistry::instance();
    // The unknown-name error lists the registry, so a config typo points
    // straight at the zoo.
    try {
        (void)registry.create("no_such_estimator");
        FAIL() << "expected InvalidInputError";
    } catch (const InvalidInputError& e) {
        EXPECT_NE(std::string(e.what()).find("plain_mc"), std::string::npos);
    }
    EXPECT_FALSE(registry.contains("no_such_estimator"));
    EXPECT_THROW(registry.add("plain_mc", [] {
        return std::unique_ptr<yield::YieldEstimator>();
    }),
                 InvalidInputError);
    EXPECT_THROW(registry.add("", [] {
        return std::unique_ptr<yield::YieldEstimator>();
    }),
                 InvalidInputError);
    EXPECT_THROW(registry.add("null_factory", {}), InvalidInputError);
}

TEST(EstimatorRegistry, MethodKnobsDoNotLeakAcrossEstimators) {
    // A scenario base carrying another estimator's method knobs must not
    // change what a given estimator runs: plain_mc stays plain MC even
    // when handed a base config asking for CE refits and scale adaptation.
    yield::SequentialConfig base;
    base.refine_after_chunks = 2;
    base.max_refits = 3;
    base.shift_fit.adapt_scale = true;
    base.shift_fit.merge_distance = 2.0;
    base.control.enabled = true;

    const auto& registry = yield::EstimatorRegistry::instance();
    const auto plain = registry.create("plain_mc")->configure(base);
    EXPECT_EQ(plain.pilot_samples, 0u);
    EXPECT_EQ(plain.refine_after_chunks, 0u);
    EXPECT_FALSE(plain.shift_fit.adapt_scale);
    EXPECT_EQ(plain.shift_fit.merge_distance, 0.0);
    EXPECT_FALSE(plain.control.enabled);

    const auto single = registry.create("single_shift")->configure(base);
    EXPECT_FALSE(single.mixture_proposal);
    EXPECT_EQ(single.refine_after_chunks, 0u);

    // And the problem-level knobs pass through untouched.
    const auto ce = registry.create("mixture_ce")->configure(base);
    EXPECT_EQ(ce.refine_after_chunks, 2u); // scenario override respected
    EXPECT_EQ(ce.max_refits, 3u);
    EXPECT_FALSE(ce.shift_fit.adapt_scale);

    const auto scale = registry.create("mixture_ce_scale")->configure(base);
    EXPECT_TRUE(scale.shift_fit.adapt_scale);
    const auto merge = registry.create("mixture_merge")->configure(base);
    EXPECT_EQ(merge.shift_fit.merge_distance, 2.0);
    const auto cv = registry.create("control_variate")->configure(base);
    EXPECT_TRUE(cv.control.enabled);
    EXPECT_EQ(cv.refine_after_chunks, 0u); // CV never refits (stage mixing)
}

// ------------------------------------------------------------- conformance

TEST(EstimatorConformance, CleanSweepReducesToWilson) {
    // No failures anywhere: every pilot fits a zero shift, every proposal
    // degenerates to the nominal single component, every log weight is
    // exactly 0 - so every estimator must report the *unweighted* Wilson
    // numbers, bit-identical to plain MC's main stage.
    const yield::Scenario sc = yield::make_scenario("clean_sweep");
    const auto plain = run_estimator(sc, "plain_mc");
    ASSERT_FALSE(plain.estimate.weighted);
    EXPECT_EQ(plain.estimate.passes, plain.estimate.samples);
    for (const std::string& name : kBuiltins) {
        const auto r = run_estimator(sc, name);
        EXPECT_FALSE(r.estimate.weighted) << name;
        EXPECT_EQ(r.samples_used, plain.samples_used) << name;
        EXPECT_EQ(r.estimate.yield, plain.estimate.yield) << name;
        EXPECT_EQ(r.estimate.ci_low, plain.estimate.ci_low) << name;
        EXPECT_EQ(r.estimate.ci_high, plain.estimate.ci_high) << name;
        EXPECT_EQ(r.estimate.control_beta, 0.0) << name;
    }
}

TEST(EstimatorConformance, InflightInvarianceAndRerunDeterminism) {
    // The streaming-window contract, zoo-wide: the retired prefix decides
    // everything, so inflight = 1 and inflight = 4 are bit-identical, as
    // are reruns with the same seed.
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    for (const std::string& name : kBuiltins) {
        const auto a = run_estimator(sc, name, 1);
        const auto b = run_estimator(sc, name, 4);
        const auto c = run_estimator(sc, name, 1);
        EXPECT_EQ(a.samples_used, b.samples_used) << name;
        EXPECT_EQ(a.refinements, b.refinements) << name;
        EXPECT_EQ(a.estimate.yield, b.estimate.yield) << name;
        EXPECT_EQ(a.estimate.ci_low, b.estimate.ci_low) << name;
        EXPECT_EQ(a.estimate.ci_high, b.estimate.ci_high) << name;
        EXPECT_EQ(a.estimate.ess, b.estimate.ess) << name;
        EXPECT_EQ(a.estimate.control_beta, b.estimate.control_beta) << name;
        EXPECT_EQ(a.samples_used, c.samples_used) << name;
        EXPECT_EQ(a.estimate.yield, c.estimate.yield) << name;
        EXPECT_EQ(a.estimate.ci_low, c.estimate.ci_low) << name;
    }
}

TEST(EstimatorConformance, ReachesTargetOnSyntheticBimodal) {
    // Every zoo member must actually work on the cheap home scenario:
    // reach the CI target within the cap with a sane estimate. (Relative
    // efficiency is the bench matrix's job, not this suite's.)
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    const double p_true = 1.0 - (1.0 - 1.349898e-3) * (1.0 - 1.349898e-3);
    for (const std::string& name : kBuiltins) {
        const auto r = run_estimator(sc, name);
        EXPECT_TRUE(r.reached_target) << name;
        EXPECT_LE(r.samples_used, sc.config.max_samples) << name;
        EXPECT_NEAR(1.0 - r.estimate.yield, p_true, 5e-3) << name;
    }
}

TEST(EstimatorConformance, ZeroBetaControlIsBitIdenticalToFailSide) {
    // The conformance anchor of the CV estimator: a fixed beta of 0 makes
    // the whole run literally the defensive-mixture fail-side run - same
    // samples, same estimate bits, no residual CI.
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    auto run_with_control = [&](const yield::ControlVariateOptions& options) {
        eval::Engine engine = make_engine();
        yield::SequentialConfig config =
            yield::EstimatorRegistry::instance().create("control_variate")
                ->configure(sc.config);
        config.control = options;
        yield::SequentialYieldRunner runner(engine, config, sc.specs,
                                            sc.factory, sc.dimension, Rng(73));
        return runner.run();
    };
    yield::ControlVariateOptions zero_beta;
    zero_beta.enabled = true;
    zero_beta.auto_beta = false;
    zero_beta.beta = 0.0;
    const auto cv = run_with_control(zero_beta);
    const auto base = run_with_control({}); // control off entirely
    EXPECT_EQ(cv.samples_used, base.samples_used);
    EXPECT_EQ(cv.estimate.yield, base.estimate.yield);
    EXPECT_EQ(cv.estimate.ci_low, base.estimate.ci_low);
    EXPECT_EQ(cv.estimate.ci_high, base.estimate.ci_high);
    EXPECT_EQ(cv.estimate.ess, base.estimate.ess);
    EXPECT_EQ(cv.estimate.control_beta, 0.0);
    // While the live CV estimator on the same scenario genuinely engages.
    const auto live = run_estimator(sc, "control_variate");
    EXPECT_NE(live.estimate.control_beta, 0.0);
}

// ------------------------------------------------- control-variate algebra

TEST(ControlVariate, DelegatesWheneverInert) {
    // pass = {F, T, F, T} with weights {2, 0.5, 1, 1}.
    const std::vector<bool> pass = {false, true, false, true};
    const std::vector<double> log_w = {std::log(2.0), std::log(0.5), 0.0, 0.0};
    const auto base = yield::weighted_yield_from_flags(pass, log_w);

    auto expect_delegated = [&](const yield::ControlVariateOptions& options,
                                const char* what) {
        const auto est = yield::control_variate_yield(pass, log_w, options);
        EXPECT_EQ(est.yield, base.yield) << what;
        EXPECT_EQ(est.ci_low, base.ci_low) << what;
        EXPECT_EQ(est.ci_high, base.ci_high) << what;
        EXPECT_EQ(est.control_beta, 0.0) << what;
    };
    expect_delegated({}, "disabled");
    yield::ControlVariateOptions zero_beta;
    zero_beta.enabled = true;
    zero_beta.auto_beta = false;
    zero_beta.beta = 0.0;
    expect_delegated(zero_beta, "fixed beta 0");

    // All-zero log weights: w is constant, Var(w) = 0, no control exists.
    yield::ControlVariateOptions on;
    on.enabled = true;
    const std::vector<double> zeros(pass.size(), 0.0);
    const auto unweighted = yield::control_variate_yield(pass, zeros, on);
    const auto wilson = yield::weighted_yield_from_flags(pass, zeros);
    EXPECT_FALSE(unweighted.weighted);
    EXPECT_EQ(unweighted.yield, wilson.yield);
    EXPECT_EQ(unweighted.control_beta, 0.0);

    // Fewer than two observed failures: the fail-side degenerate-evidence
    // fallbacks are the safer report.
    const std::vector<bool> one_fail = {false, true, true, true};
    const auto one = yield::control_variate_yield(one_fail, log_w, on);
    const auto one_base = yield::weighted_yield_from_flags(one_fail, log_w);
    EXPECT_EQ(one.yield, one_base.yield);
    EXPECT_EQ(one.ci_low, one_base.ci_low);
    EXPECT_EQ(one.control_beta, 0.0);
}

TEST(ControlVariate, MatchesHandComputedRegression) {
    // w = {2, 0.5, 1, 1}, fails at samples 0 and 2, so x = {2, 0, 1, 0}:
    //   mean(x) = 0.75, mean(w) = 1.125,
    //   n*Cov(x, w) = 5 - 3*4.5/4   = 1.625,
    //   n*Var(w)    = 6.25 - 5.0625 = 1.1875,
    //   beta* = 1.625/1.1875, phat = 0.75 - beta*(1.125 - 1).
    const std::vector<bool> pass = {false, true, false, true};
    const std::vector<double> log_w = {std::log(2.0), std::log(0.5), 0.0, 0.0};
    const double beta = 1.625 / 1.1875;
    const double phat = 0.75 - beta * 0.125;

    yield::ControlVariateOptions on;
    on.enabled = true;
    const auto est = yield::control_variate_yield(pass, log_w, on);
    EXPECT_TRUE(est.weighted);
    EXPECT_NEAR(est.control_beta, beta, 1e-12);
    EXPECT_NEAR(est.yield, 1.0 - phat, 1e-12);
    // The control shifts the estimate, not the fail-side evidence.
    const auto base = yield::weighted_yield_from_flags(pass, log_w);
    EXPECT_EQ(est.ess, base.ess);
    EXPECT_EQ(est.max_weight_share, base.max_weight_share);
    EXPECT_EQ(est.fail_weight_sum, base.fail_weight_sum);

    // The beta clamp caps the correction, not the estimate.
    yield::ControlVariateOptions clamped = on;
    clamped.max_beta = 0.5;
    const auto capped = yield::control_variate_yield(pass, log_w, clamped);
    EXPECT_NEAR(capped.control_beta, 0.5, 1e-12);
    EXPECT_NEAR(capped.yield, 1.0 - (0.75 - 0.5 * 0.125), 1e-12);

    // A fixed beta is applied as given (still unbiased for any beta).
    yield::ControlVariateOptions fixed;
    fixed.enabled = true;
    fixed.auto_beta = false;
    fixed.beta = 1.0;
    const auto manual = yield::control_variate_yield(pass, log_w, fixed);
    EXPECT_NEAR(manual.control_beta, 1.0, 1e-12);
    EXPECT_NEAR(manual.yield, 1.0 - (0.75 - 0.125), 1e-12);
}

// ------------------------------------------------ scale adaptation + merge

TEST(ShiftFitScale, LearnsWeightedSpreadAroundClampedCenter) {
    // One spec, dimension 1, unit weights. Failing records at u = 4 and 6:
    // the fitted mean 5 is norm-clamped to 4, and the CE variance around
    // the *clamped* center is E[u^2] - 2*4*E[u] + 16 = 26 - 40 + 16 = 2.
    const std::vector<mc::Spec> specs = {mc::Spec::at_most("v", 3.0)};
    const std::vector<std::vector<double>> rows = {{4.0, 0.0, 4.0},
                                                   {6.0, 0.0, 6.0}};
    yield::ShiftFitConfig config;
    config.adapt_scale = true;
    const auto fit = yield::refit_shift(rows, specs, 1, config);
    ASSERT_EQ(fit.mixture.components.size(), 2u); // nominal + 1 spec
    const auto& comp = fit.mixture.components[1];
    EXPECT_DOUBLE_EQ(comp.mu[0], 4.0); // norm clamp at max_norm = 4
    ASSERT_EQ(comp.sigma.size(), 1u);
    EXPECT_NEAR(comp.sigma[0], std::sqrt(2.0), 1e-12);

    // Near-coincident records under-estimate the spread; the min_scale
    // clamp keeps the component from over-shrinking into weight spikes.
    const std::vector<std::vector<double>> tight = {{3.5, 0.0, 3.5},
                                                    {3.6, 0.0, 3.6}};
    const auto shrunk = yield::refit_shift(tight, specs, 1, config);
    ASSERT_EQ(shrunk.mixture.components.size(), 2u);
    ASSERT_EQ(shrunk.mixture.components[1].sigma.size(), 1u);
    EXPECT_DOUBLE_EQ(shrunk.mixture.components[1].sigma[0], config.min_scale);

    // A single failing record carries no spread information: unit scale.
    const std::vector<std::vector<double>> lone = {{4.0, 0.0, 4.0}};
    const auto single = yield::refit_shift(lone, specs, 1, config);
    ASSERT_EQ(single.mixture.components.size(), 2u);
    EXPECT_TRUE(single.mixture.components[1].sigma.empty());

    // The pilot fit never adapts scales, whatever the config says.
    const auto pilot = yield::fit_shift(rows, specs, 1, config);
    ASSERT_EQ(pilot.mixture.components.size(), 2u);
    EXPECT_TRUE(pilot.mixture.components[1].sigma.empty());

    // Malformed clamps are rejected up front.
    yield::ShiftFitConfig bad = config;
    bad.min_scale = 2.0;
    bad.max_scale = 1.0;
    EXPECT_THROW((void)yield::refit_shift(rows, specs, 1, bad),
                 InvalidInputError);
}

TEST(ShiftFitMerge, AbsorbsOverlappingComponentsOnly) {
    // Two specs over two dimensions; rows are {a, b, log_w, u0, u1}.
    const std::vector<mc::Spec> specs = {mc::Spec::at_most("a", 3.0),
                                         mc::Spec::at_most("b", 3.0)};
    yield::ShiftFitConfig config;
    config.merge_distance = 1.0;

    // Overlapping failure modes: CoGs at (3.2, 0) and (3.6, 0), unit
    // variances, so the Mahalanobis distance is 0.4 < 1 and the components
    // merge into one at the mass-weighted mean - the mixture is nominal + 1.
    const std::vector<std::vector<double>> close = {
        {3.2, 0.0, 0.0, 3.2, 0.0}, {0.0, 3.6, 0.0, 3.6, 0.0}};
    const auto merged = yield::refit_shift(close, specs, 2, config);
    EXPECT_EQ(merged.merged_components, 1u);
    ASSERT_EQ(merged.mixture.components.size(), 2u);
    const auto& comp = merged.mixture.components[1];
    EXPECT_NEAR(comp.mu[0], 3.4, 1e-12);
    EXPECT_NEAR(comp.mu[1], 0.0, 1e-12);
    EXPECT_NEAR(comp.weight, 1.0 - config.defensive_weight, 1e-12);

    // Disjoint modes stay separate components.
    const std::vector<std::vector<double>> apart = {
        {4.0, 0.0, 0.0, 3.5, 0.0}, {0.0, 4.0, 0.0, 0.0, 3.5}};
    const auto kept = yield::refit_shift(apart, specs, 2, config);
    EXPECT_EQ(kept.merged_components, 0u);
    EXPECT_EQ(kept.mixture.components.size(), 3u);

    // merge_distance = 0 disables merging even for coincident centers.
    yield::ShiftFitConfig off;
    const auto disabled = yield::refit_shift(close, specs, 2, off);
    EXPECT_EQ(disabled.merged_components, 0u);
    EXPECT_EQ(disabled.mixture.components.size(), 3u);
}

TEST(ShiftFitMerge, MomentMatchWidensMergedVariance) {
    // With scale adaptation on, merging two components with distinct means
    // must fold the between-mean spread into the merged variance: pooled
    // E[u^2] minus the merged mean squared, never just an average.
    const std::vector<mc::Spec> specs = {mc::Spec::at_most("a", 2.0),
                                         mc::Spec::at_most("b", 2.0)};
    yield::ShiftFitConfig config;
    config.adapt_scale = true;
    config.merge_distance = 3.0;
    // Spec a fails at u0 = {2.4, 2.6} (mean 2.5), spec b at u0 = {3.4, 3.6}
    // (mean 3.5); both have within-variance 0.01 -> clamped to min_scale^2.
    // Merged mean 3.0; merged var = within + between = min^2 + 0.25.
    const std::vector<std::vector<double>> rows = {{2.4, 0.0, 0.0, 2.4, 0.0},
                                                   {2.6, 0.0, 0.0, 2.6, 0.0},
                                                   {0.0, 3.4, 0.0, 3.4, 0.0},
                                                   {0.0, 3.6, 0.0, 3.6, 0.0}};
    const auto fit = yield::refit_shift(rows, specs, 2, config);
    EXPECT_EQ(fit.merged_components, 1u);
    ASSERT_EQ(fit.mixture.components.size(), 2u);
    const auto& comp = fit.mixture.components[1];
    EXPECT_NEAR(comp.mu[0], 3.0, 1e-12);
    ASSERT_EQ(comp.sigma.size(), 2u);
    const double expected =
        std::sqrt(config.min_scale * config.min_scale + 0.25);
    EXPECT_NEAR(comp.sigma[0], expected, 1e-12);
    // Dimension 1 never spread: its sigma stays at the min clamp.
    EXPECT_DOUBLE_EQ(comp.sigma[1], config.min_scale);
}

// ------------------------------------------------------ custom registration

TEST(EstimatorRegistry, CustomEstimatorRunsThroughTheSameSeam) {
    // The "how to add an estimator" path: subclass, register under a new
    // name, run through the same estimate() seam as the built-ins.
    class WidePilot final : public yield::YieldEstimator {
    public:
        [[nodiscard]] std::string_view name() const override {
            return "test_wide_pilot";
        }
        [[nodiscard]] yield::SequentialConfig
        configure(yield::SequentialConfig base) const override {
            base.pilot_scale = 3.0;
            return base;
        }
    };
    auto& registry = yield::EstimatorRegistry::instance();
    if (!registry.contains("test_wide_pilot"))
        registry.add("test_wide_pilot",
                     [] { return std::make_unique<WidePilot>(); });
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    const auto r = run_estimator(sc, "test_wide_pilot");
    EXPECT_TRUE(r.reached_target);
    EXPECT_TRUE(r.estimate.weighted);
}

// ------------------------------------------------------------- yield probes

yield::ProbeConfig probe_config_for(const yield::Scenario& sc,
                                    const std::string& estimator,
                                    std::size_t budget,
                                    std::size_t inflight = 1) {
    yield::ProbeConfig config;
    config.sequential = sc.config;
    config.sequential.inflight = inflight;
    config.estimator = estimator;
    config.budget = budget;
    config.target_half_width = 0.08;
    return config;
}

TEST(YieldProbe, RegistryDrivenBudgetCompatibilityRows) {
    // Zoo-wide contract of configure_probe_estimator: at a generous budget
    // every builtin specializes with its caps clamped to the budget left
    // after its pilot; at a budget the pilot alone exceeds, the estimator
    // is rejected with the probe-compatible subset (which always includes
    // the pilot-less plain_mc) listed - never silently degraded.
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    ASSERT_EQ(sc.config.pilot_samples, 256u);
    for (const std::string& name : kBuiltins) {
        const auto cfg =
            yield::configure_probe_estimator(name, sc.config, 1024, 0.08);
        EXPECT_EQ(cfg.max_samples, 1024 - cfg.pilot_samples) << name;
        EXPECT_LE(cfg.chunk_samples, cfg.max_samples) << name;
        EXPECT_LE(cfg.min_samples, cfg.max_samples) << name;
        EXPECT_DOUBLE_EQ(cfg.target_half_width, 0.08) << name;

        if (name == "plain_mc") {
            const auto tiny =
                yield::configure_probe_estimator(name, sc.config, 8, 0.08);
            EXPECT_EQ(tiny.pilot_samples, 0u);
            EXPECT_EQ(tiny.max_samples, 8u);
            continue;
        }
        try {
            (void)yield::configure_probe_estimator(name, sc.config, 8, 0.08);
            FAIL() << name << ": expected probe-incompatibility error";
        } catch (const InvalidInputError& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find(name), std::string::npos) << what;
            EXPECT_NE(what.find("plain_mc"), std::string::npos) << what;
        }
    }
    // Unknown names still fail with the registry's own listing error.
    EXPECT_THROW((void)yield::configure_probe_estimator("no_such_estimator",
                                                        sc.config, 1024, 0.08),
                 InvalidInputError);
    // The empty name resolves to plain_mc (the flow default).
    const auto def = yield::configure_probe_estimator("", sc.config, 64, 0.08);
    EXPECT_EQ(def.pilot_samples, 0u);
    EXPECT_EQ(def.max_samples, 64u);
}

TEST(YieldProbe, DeterministicAcrossInflightWindowsAndReruns) {
    // The probe-path streaming contract: per-point estimates are
    // bit-identical for any inflight window and across reruns, because
    // point RNGs derive from submission position and each runner's folded
    // prefix is window-invariant.
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    const std::vector<std::vector<double>> points = {{0.0}, {1.0}, {2.0}};
    const auto run_with_window = [&](std::size_t inflight) {
        eval::Engine engine = make_engine();
        yield::YieldProbe probe(
            probe_config_for(sc, "mixture_ce", 768, inflight), sc.specs,
            [&](const std::vector<double>&) { return sc.factory; },
            sc.dimension);
        return probe.probe(engine, points, Rng(73), 0);
    };
    const auto a = run_with_window(1);
    const auto b = run_with_window(4);
    const auto c = run_with_window(1);
    ASSERT_EQ(a.size(), points.size());
    ASSERT_EQ(b.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(a[i].samples_used, b[i].samples_used) << i;
        EXPECT_EQ(a[i].estimate.yield, b[i].estimate.yield) << i;
        EXPECT_EQ(a[i].estimate.ci_low, b[i].estimate.ci_low) << i;
        EXPECT_EQ(a[i].estimate.ci_high, b[i].estimate.ci_high) << i;
        EXPECT_EQ(a[i].estimate.ess, b[i].estimate.ess) << i;
        EXPECT_EQ(a[i].samples_used, c[i].samples_used) << i;
        EXPECT_EQ(a[i].estimate.yield, c[i].estimate.yield) << i;
        // Every probe respects the hard budget, pilot included.
        EXPECT_LE(a[i].samples_used, 768u) << i;
        EXPECT_FALSE(a[i].warm_started) << i;
    }
}

TEST(YieldProbe, WarmStartSkipsPilotAtSameCI) {
    // Generation-to-generation warm start: the first (cold) call fits
    // proposals from pilots and donates one; the second call skips pilots
    // entirely, so the same coarse CI costs a pilot less per point - and
    // the two estimates must agree at CI level (same quantity, exact
    // importance weights under either proposal).
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    const std::vector<std::vector<double>> point = {{0.0}};
    eval::Engine engine = make_engine();
    yield::YieldProbe probe(probe_config_for(sc, "single_shift", 768),
                            sc.specs,
                            [&](const std::vector<double>&) { return sc.factory; },
                            sc.dimension);
    EXPECT_TRUE(probe.warm_proposal().components.empty());

    const auto cold = probe.probe(engine, point, Rng(73).child(1), 0);
    ASSERT_EQ(cold.size(), 1u);
    EXPECT_FALSE(cold[0].warm_started);
    EXPECT_GE(cold[0].samples_used, sc.config.pilot_samples);
    // The bimodal pilot always finds failures, so the hand-off happened.
    ASSERT_FALSE(probe.warm_proposal().components.empty());
    EXPECT_TRUE(probe.warm_proposal().active());

    const auto warm = probe.probe(engine, point, Rng(73).child(2), 1);
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_TRUE(warm[0].warm_started);
    // No pilot: the whole budget is main-stage, and the coarse target stops
    // the run a full pilot cheaper than the cold call.
    EXPECT_LT(warm[0].samples_used, cold[0].samples_used);
    EXPECT_TRUE(warm[0].reached_target);
    // Same-CI sanity: the two coarse intervals overlap.
    EXPECT_LE(cold[0].estimate.ci_low, warm[0].estimate.ci_high);
    EXPECT_LE(warm[0].estimate.ci_low, cold[0].estimate.ci_high);

    EXPECT_EQ(probe.total_samples(),
              cold[0].samples_used + warm[0].samples_used);
}

TEST(YieldProbe, RunnerWarmStartSeamValidation) {
    // The runner-level seam the probe rides: a warm proposal and a pilot
    // are mutually exclusive (ambiguous), and a warm-started runner binds
    // the given proposal as its main stage.
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    eval::Engine engine = make_engine();

    process::SampleShift shift;
    shift.mu = {3.0, 0.0};
    yield::SequentialConfig both = sc.config;
    both.initial_proposal = process::ProposalMixture::single(shift);
    EXPECT_THROW(yield::SequentialYieldRunner(engine, both, sc.specs,
                                              sc.factory, sc.dimension,
                                              Rng(73)),
                 InvalidInputError);

    yield::SequentialConfig warm = both;
    warm.pilot_samples = 0;
    warm.max_samples = 512;
    warm.min_samples = 256;
    yield::SequentialYieldRunner runner(engine, warm, sc.specs, sc.factory,
                                        sc.dimension, Rng(73));
    const auto r = runner.run();
    EXPECT_EQ(r.pilot_samples, 0u);
    ASSERT_EQ(r.proposal.components.size(), 1u);
    EXPECT_EQ(r.proposal.components[0].mu, shift.mu);
    EXPECT_TRUE(r.estimate.weighted);
}

TEST(YieldProbe, RejectsMalformedConstruction) {
    const yield::Scenario sc = yield::make_scenario("synthetic_bimodal");
    const auto factory = [&](const std::vector<double>&) { return sc.factory; };
    EXPECT_THROW(yield::YieldProbe(probe_config_for(sc, "", 0), sc.specs,
                                   factory, sc.dimension),
                 InvalidInputError);
    EXPECT_THROW(yield::YieldProbe(probe_config_for(sc, "", 64), {}, factory,
                                   sc.dimension),
                 InvalidInputError);
    EXPECT_THROW(yield::YieldProbe(probe_config_for(sc, "", 64), sc.specs, {},
                                   sc.dimension),
                 InvalidInputError);
}

} // namespace
