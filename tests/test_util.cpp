// Unit tests for src/util: strings, units, mathx, rng, thread pool, tables.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace ypm;

// ---------------------------------------------------------------- strings

TEST(Strings, TrimRemovesSurroundingWhitespace) {
    EXPECT_EQ(str::trim("  hello \t\r\n"), "hello");
    EXPECT_EQ(str::trim(""), "");
    EXPECT_EQ(str::trim("   "), "");
    EXPECT_EQ(str::trim("a b"), "a b");
}

TEST(Strings, CaseConversion) {
    EXPECT_EQ(str::to_lower("MiXeD 123"), "mixed 123");
    EXPECT_EQ(str::to_upper("MiXeD 123"), "MIXED 123");
}

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = str::split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
    const auto parts = str::split_ws("  a \t b\n c  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTrip) {
    EXPECT_EQ(str::join({"x", "y", "z"}, ", "), "x, y, z");
    EXPECT_EQ(str::join({}, ","), "");
}

TEST(Strings, IequalsIsCaseInsensitive) {
    EXPECT_TRUE(str::iequals("NMOS", "nmos"));
    EXPECT_FALSE(str::iequals("nmos", "pmos"));
    EXPECT_FALSE(str::iequals("ab", "abc"));
}

TEST(Strings, FmtDoubleRoundTrips) {
    const double v = 1.2345678901234567e-11;
    EXPECT_DOUBLE_EQ(std::stod(str::fmt_double(v)), v);
}

// ------------------------------------------------------------------ units

TEST(Strings, JsonEscapeHandlesQuotesAndControls) {
    EXPECT_EQ(str::json_escape("plain"), "plain");
    EXPECT_EQ(str::json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(str::json_escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(str::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(str::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Units, ParsesSpiceSuffixes) {
    EXPECT_DOUBLE_EQ(units::parse_value("10u"), 10e-6);
    EXPECT_DOUBLE_EQ(units::parse_value("0.35u"), 0.35e-6);
    EXPECT_DOUBLE_EQ(units::parse_value("4meg"), 4e6);
    EXPECT_DOUBLE_EQ(units::parse_value("2.2k"), 2.2e3);
    EXPECT_DOUBLE_EQ(units::parse_value("5p"), 5e-12);
    EXPECT_DOUBLE_EQ(units::parse_value("3n"), 3e-9);
    EXPECT_DOUBLE_EQ(units::parse_value("1m"), 1e-3);
    EXPECT_DOUBLE_EQ(units::parse_value("7f"), 7e-15);
    EXPECT_DOUBLE_EQ(units::parse_value("2g"), 2e9);
    EXPECT_DOUBLE_EQ(units::parse_value("1t"), 1e12);
}

TEST(Units, MegIsNotMilli) {
    EXPECT_DOUBLE_EQ(units::parse_value("1meg"), 1e6);
    EXPECT_DOUBLE_EQ(units::parse_value("1m"), 1e-3);
    EXPECT_DOUBLE_EQ(units::parse_value("1MEG"), 1e6);
}

TEST(Units, ToleratesTrailingUnitNames) {
    EXPECT_DOUBLE_EQ(units::parse_value("10uF"), 10e-6);
    EXPECT_DOUBLE_EQ(units::parse_value("50ohm"), 50.0);
    EXPECT_DOUBLE_EQ(units::parse_value("3.3v"), 3.3);
}

TEST(Units, ParsesPlainScientific) {
    EXPECT_DOUBLE_EQ(units::parse_value("1e-6"), 1e-6);
    EXPECT_DOUBLE_EQ(units::parse_value("-2.5e3"), -2500.0);
}

TEST(Units, RejectsGarbage) {
    EXPECT_THROW((void)units::parse_value("abc"), InvalidInputError);
    EXPECT_THROW((void)units::parse_value(""), InvalidInputError);
    EXPECT_FALSE(units::try_parse_value("x1").has_value());
}

TEST(Units, FormatEngineering) {
    EXPECT_EQ(units::format_eng(10e-6), "10u");
    EXPECT_EQ(units::format_eng(2.2e3), "2.2k");
    EXPECT_EQ(units::format_eng(0.0), "0");
    EXPECT_EQ(units::format_eng(1e6), "1meg");
}

TEST(Units, FormatParseRoundTrip) {
    for (double v : {1e-12, 3.3, 47e-9, 2.7e3, 1.5e7, -42.0}) {
        const double back = units::parse_value(units::format_eng(v, 9));
        EXPECT_NEAR(back, v, std::fabs(v) * 1e-6);
    }
}

// ------------------------------------------------------------------ mathx

TEST(Mathx, LinspaceEndpointsExact) {
    const auto v = mathx::linspace(-1.0, 2.0, 7);
    ASSERT_EQ(v.size(), 7u);
    EXPECT_DOUBLE_EQ(v.front(), -1.0);
    EXPECT_DOUBLE_EQ(v.back(), 2.0);
    for (std::size_t i = 1; i < v.size(); ++i)
        EXPECT_NEAR(v[i] - v[i - 1], 0.5, 1e-12);
}

TEST(Mathx, LogspaceEndpointsExact) {
    const auto v = mathx::logspace(10.0, 1e6, 6);
    ASSERT_EQ(v.size(), 6u);
    EXPECT_DOUBLE_EQ(v.front(), 10.0);
    EXPECT_DOUBLE_EQ(v.back(), 1e6);
    EXPECT_THROW((void)mathx::logspace(-1.0, 10.0, 3), InvalidInputError);
}

TEST(Mathx, DbConversionInverse) {
    for (double db : {-40.0, 0.0, 17.3, 50.0})
        EXPECT_NEAR(mathx::db20(mathx::undb20(db)), db, 1e-9);
}

TEST(Mathx, InterpLinearClampsAndInterpolates) {
    const std::vector<double> xs = {0.0, 1.0, 2.0};
    const std::vector<double> ys = {0.0, 10.0, 40.0};
    EXPECT_DOUBLE_EQ(mathx::interp_linear(xs, ys, -5.0), 0.0);
    EXPECT_DOUBLE_EQ(mathx::interp_linear(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(mathx::interp_linear(xs, ys, 1.5), 25.0);
    EXPECT_DOUBLE_EQ(mathx::interp_linear(xs, ys, 99.0), 40.0);
}

TEST(Mathx, BracketFindsInterval) {
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
    EXPECT_EQ(mathx::bracket(xs, 0.5), 0u);
    EXPECT_EQ(mathx::bracket(xs, 3.0), 1u);
    EXPECT_EQ(mathx::bracket(xs, 8.0), 2u);
    EXPECT_EQ(mathx::bracket(xs, 100.0), 2u);
}

TEST(Mathx, NormalizeDenormalizeInverse) {
    EXPECT_DOUBLE_EQ(mathx::normalize(15.0, 10.0, 20.0), 0.5);
    EXPECT_DOUBLE_EQ(mathx::denormalize(0.5, 10.0, 20.0), 15.0);
    EXPECT_DOUBLE_EQ(mathx::normalize(1.0, 5.0, 5.0), 0.0); // degenerate
}

TEST(Mathx, ApproxEqual) {
    EXPECT_TRUE(mathx::approx_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(mathx::approx_equal(1.0, 1.001));
    EXPECT_TRUE(mathx::approx_equal(0.0, 1e-15));
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform01() == b.uniform01()) ++equal;
    EXPECT_LT(equal, 5);
}

TEST(Rng, ChildStreamsAreIndependentAndDeterministic) {
    const Rng parent(99);
    Rng c1 = parent.child(1);
    Rng c1_again = parent.child(1);
    Rng c2 = parent.child(2);
    EXPECT_DOUBLE_EQ(c1.uniform01(), c1_again.uniform01());
    // Streams 1 and 2 should decorrelate immediately.
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.uniform01() == c2.uniform01()) ++equal;
    EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussMomentsRoughlyCorrect) {
    Rng rng(17);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gauss();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, PermutationIsAPermutation) {
    Rng rng(3);
    const auto p = rng.permutation(50);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, IndexStaysInRange) {
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, ParallelForCoversAllIndices) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                       if (i == 57) throw Error("boom");
                                   }),
                 Error);
}

TEST(ThreadPool, ZeroAndOneItems) {
    ThreadPool pool(2);
    pool.parallel_for(0, [](std::size_t) { FAIL(); });
    int count = 0;
    pool.parallel_for(1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ManyShortCallsStress) {
    // Regression test for a use-after-scope race: a worker draining the
    // index counter could touch the per-call control state after the
    // caller had already returned. Thousands of short calls make that
    // window hit reliably.
    ThreadPool pool(4);
    std::atomic<long> total{0};
    for (int round = 0; round < 4000; ++round)
        pool.parallel_for(5, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 20000);
}

TEST(ThreadPool, ReusableAcrossCalls) {
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int round = 0; round < 5; ++round)
        pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, AsyncSubmitterMayLeaveScopeBeforeCompletion) {
    // Regression test for the use-after-scope bug that blocked async
    // dispatch: queued jobs used to capture the caller's `fn` by reference,
    // which was only safe because parallel_for blocked. Here the submitting
    // scope (including the submitted lambda and the vector it captures)
    // dies before the gate lets any item run; the pool must run from its
    // own shared copy of the state.
    ThreadPool pool(4);
    std::atomic<bool> gate{false};
    std::vector<std::atomic<int>> hits(64);
    ThreadPool::Job job;
    {
        std::vector<std::size_t> scope_data(64);
        for (std::size_t i = 0; i < scope_data.size(); ++i) scope_data[i] = i;
        job = pool.parallel_for_async(
            scope_data.size(), [&hits, &gate, scope_data](std::size_t i) {
                while (!gate.load(std::memory_order_acquire))
                    std::this_thread::yield();
                hits[scope_data[i]].fetch_add(1);
            });
        // scope_data (the submitted lambda's copy source) dies here, while
        // every item is still blocked on the gate.
    }
    EXPECT_TRUE(job.valid());
    gate.store(true, std::memory_order_release);
    job.wait();
    EXPECT_TRUE(job.done());
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, AsyncJobPropagatesExceptionsAtWait) {
    ThreadPool pool(2);
    auto job = pool.parallel_for_async(10, [](std::size_t i) {
        if (i == 3) throw Error("async boom");
    });
    EXPECT_THROW(job.wait(), Error);
    // wait() is idempotent after consuming the error.
    job.wait();
}

TEST(ThreadPool, AsyncZeroItemsIsInvalidNoOpJob) {
    ThreadPool pool(2);
    auto job = pool.parallel_for_async(0, [](std::size_t) { FAIL(); });
    EXPECT_FALSE(job.valid());
    EXPECT_TRUE(job.done());
    job.wait(); // no-op
}

// ------------------------------------------------------------- text table

TEST(TextTable, AlignsColumnsAndCountsRows) {
    TextTable t({"Design", "Gain (dB)"});
    t.add_row({"21", "49.78"});
    t.add_row({"22", "49.90"});
    EXPECT_EQ(t.rows(), 2u);
    const std::string s = t.to_string();
    EXPECT_NE(s.find("Design"), std::string::npos);
    EXPECT_NE(s.find("49.90"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), InvalidInputError);
    EXPECT_THROW(TextTable({}), InvalidInputError);
}

// -------------------------------------------------------------------- log

/// Installs a capturing sink for one scope and restores stderr logging
/// (and the ambient level) on exit, so tests cannot leak logger state.
class ScopedSink {
public:
    explicit ScopedSink(std::vector<std::string>& lines)
        : saved_level_(log::level()) {
        log::set_level(log::Level::debug);
        log::set_sink(log::json_lines_sink(lines));
    }
    ~ScopedSink() {
        log::set_sink(nullptr);
        log::set_level(saved_level_);
    }

private:
    log::Level saved_level_;
};

TEST(Log, SinkCapturesMessagesAsJsonLines) {
    std::vector<std::string> lines;
    {
        const ScopedSink sink(lines);
        log::warn("pilot skipped: budget ", 12, " too small");
        log::info("chunk done");
    }
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0],
              "{\"level\":\"warn\",\"msg\":\"pilot skipped: budget 12 too small\"}");
    EXPECT_EQ(lines[1], "{\"level\":\"info\",\"msg\":\"chunk done\"}");
}

TEST(Log, SinkRespectsLevelThresholdAndEscapesPayload) {
    std::vector<std::string> lines;
    {
        const ScopedSink sink(lines);
        log::set_level(log::Level::warn);
        log::info("dropped below threshold");
        log::error("bad \"value\"\nhere");
    }
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0],
              "{\"level\":\"error\",\"msg\":\"bad \\\"value\\\"\\nhere\"}");
}

TEST(Log, RemovingSinkRestoresStderrPath) {
    std::vector<std::string> lines;
    log::set_sink(log::json_lines_sink(lines));
    log::set_sink(nullptr);
    // With no sink this goes to stderr; the assertion is just that the
    // captured vector stays untouched.
    log::write(log::Level::error, "to stderr");
    EXPECT_TRUE(lines.empty());
}

TEST(Log, LevelNames) {
    EXPECT_STREQ(log::level_name(log::Level::debug), "debug");
    EXPECT_STREQ(log::level_name(log::Level::warn), "warn");
    EXPECT_STREQ(log::level_name(log::Level::off), "off");
}

TEST(TextTable, CsvEscapesCommas) {
    TextTable t({"name", "value"});
    t.add_row({"a,b", "1"});
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
}

} // namespace
