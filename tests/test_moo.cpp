// Unit tests for src/moo: GA strings (paper Fig. 4, eq. 4), eq. 5 fitness,
// genetic operators, dominance/Pareto extraction (paper section 3.3), WBGA,
// NSGA-II and random-search baselines on analytic problems.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "moo/fitness.hpp"
#include "moo/ga_string.hpp"
#include "moo/nsga2.hpp"
#include "moo/operators.hpp"
#include "moo/pareto.hpp"
#include "moo/random_search.hpp"
#include "moo/robustness.hpp"
#include "moo/test_problems.hpp"
#include "moo/wbga.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::moo;

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

const std::vector<ObjectiveSpec> max2 = {{"f1", Direction::maximize},
                                         {"f2", Direction::maximize}};
const std::vector<ObjectiveSpec> min2 = {{"f1", Direction::minimize},
                                         {"f2", Direction::minimize}};

// -------------------------------------------------------------- GA string

TEST(GaString, LayoutAndRandomInit) {
    Rng rng(1);
    const GaString s = GaString::random(8, 2, rng);
    EXPECT_EQ(s.n_params(), 8u);
    EXPECT_EQ(s.n_weights(), 2u);
    EXPECT_EQ(s.size(), 10u);
    for (double g : s.genes()) {
        EXPECT_GE(g, 0.0);
        EXPECT_LT(g, 1.0);
    }
}

TEST(GaString, DecodeParametersMapsBoxConstraints) {
    GaString s(2, 0);
    s.genes() = {0.0, 1.0};
    const std::vector<ParameterSpec> specs = {{"w", 10e-6, 60e-6},
                                              {"l", 0.35e-6, 4e-6}};
    const auto p = s.decode_parameters(specs);
    EXPECT_DOUBLE_EQ(p[0], 10e-6);
    EXPECT_DOUBLE_EQ(p[1], 4e-6);
}

TEST(GaString, DecodeParametersArityChecked) {
    GaString s(2, 0);
    EXPECT_THROW((void)s.decode_parameters({{"only", 0.0, 1.0}}),
                 InvalidInputError);
}

TEST(GaString, WeightsNormalisedPerEquation4) {
    GaString s(0, 3);
    s.genes() = {0.2, 0.3, 0.5};
    const auto w = s.decode_weights();
    double sum = 0.0;
    for (double v : w) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(w[0], 0.2, 1e-12);
    EXPECT_NEAR(w[2], 0.5, 1e-12);
}

TEST(GaString, ZeroWeightsDecodeUniform) {
    const auto w = normalize_weights({0.0, 0.0, 0.0, 0.0});
    for (double v : w) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(GaString, ClampBringsGenesInRange) {
    GaString s(2, 0);
    s.genes() = {-0.5, 1.7};
    s.clamp();
    EXPECT_DOUBLE_EQ(s.genes()[0], 0.0);
    EXPECT_DOUBLE_EQ(s.genes()[1], 1.0);
}

// ---------------------------------------------------------------- fitness

TEST(Fitness, Equation5NormalisationBounds) {
    // Three individuals, uniform weights: best-everywhere scores 1.
    const std::vector<std::vector<double>> objs = {{50.0, 80.0}, {55.0, 70.0},
                                                   {60.0, 60.0}};
    const std::vector<std::vector<double>> weights(3, {0.5, 0.5});
    const auto fit = wbga_fitness_all(objs, weights, max2);
    for (double f : fit) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
    // The middle design is balanced: 0.5*0.5 + 0.5*0.5 = 0.5.
    EXPECT_NEAR(fit[1], 0.5, 1e-12);
    // End designs trade one objective for the other: also 0.5 each.
    EXPECT_NEAR(fit[0], 0.5, 1e-12);
    EXPECT_NEAR(fit[2], 0.5, 1e-12);
}

TEST(Fitness, MinimisedObjectiveInverted) {
    const std::vector<std::vector<double>> objs = {{1.0}, {3.0}};
    const std::vector<std::vector<double>> weights(2, {1.0});
    const std::vector<ObjectiveSpec> spec = {{"err", Direction::minimize}};
    const auto fit = wbga_fitness_all(objs, weights, spec);
    EXPECT_DOUBLE_EQ(fit[0], 1.0); // smallest error wins
    EXPECT_DOUBLE_EQ(fit[1], 0.0);
}

TEST(Fitness, FailedEvaluationScoresZero) {
    const std::vector<std::vector<double>> objs = {{50.0, 80.0}, {nan_v, 70.0}};
    const std::vector<std::vector<double>> weights(2, {0.5, 0.5});
    const auto fit = wbga_fitness_all(objs, weights, max2);
    EXPECT_DOUBLE_EQ(fit[1], 0.0);
    EXPECT_GT(fit[0], 0.0);
}

TEST(Fitness, DegeneratePopulationDoesNotDivideByZero) {
    const std::vector<std::vector<double>> objs = {{5.0, 5.0}, {5.0, 5.0}};
    const std::vector<std::vector<double>> weights(2, {0.5, 0.5});
    const auto fit = wbga_fitness_all(objs, weights, max2);
    EXPECT_TRUE(std::isfinite(fit[0]));
    EXPECT_TRUE(std::isfinite(fit[1]));
}

TEST(Fitness, AllFailedThrows) {
    const std::vector<std::vector<double>> objs = {{nan_v, nan_v}};
    EXPECT_THROW((void)objective_bounds(objs, max2), InvalidInputError);
}

// -------------------------------------------------------------- operators

TEST(Operators, TournamentPrefersHigherFitness) {
    Rng rng(1);
    const std::vector<double> fitness = {0.1, 0.9, 0.2, 0.05};
    int won = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i)
        if (select_tournament(fitness, 2, rng) == 1) ++won;
    // Index 1 should win far more often than uniform (25 %).
    EXPECT_GT(won, trials / 3);
}

TEST(Operators, RouletteProportionalToFitness) {
    Rng rng(2);
    const std::vector<double> fitness = {1.0, 3.0};
    int first = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i)
        if (select_roulette(fitness, rng) == 0) ++first;
    EXPECT_NEAR(static_cast<double>(first) / trials, 0.25, 0.05);
}

TEST(Operators, RouletteDegradesToUniformOnZeroFitness) {
    Rng rng(3);
    const std::vector<double> fitness = {0.0, 0.0, 0.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 3000; ++i) ++counts[select_roulette(fitness, rng)];
    for (int c : counts) EXPECT_GT(c, 800);
}

class CrossoverTest : public ::testing::TestWithParam<CrossoverKind> {};

TEST_P(CrossoverTest, ChildrenStayInUnitBoxAndPreserveLayout) {
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const GaString a = GaString::random(6, 2, rng);
        const GaString b = GaString::random(6, 2, rng);
        GaString ca(6, 2), cb(6, 2);
        crossover(GetParam(), a, b, ca, cb, rng);
        EXPECT_EQ(ca.size(), 8u);
        EXPECT_EQ(cb.n_params(), 6u);
        for (double g : ca.genes()) {
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
        for (double g : cb.genes()) {
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CrossoverTest,
                         ::testing::Values(CrossoverKind::single_point,
                                           CrossoverKind::two_point,
                                           CrossoverKind::uniform,
                                           CrossoverKind::blend));

TEST(Operators, SinglePointExchangesTail) {
    Rng rng(5);
    GaString a(4, 0), b(4, 0);
    a.genes() = {0.0, 0.0, 0.0, 0.0};
    b.genes() = {1.0, 1.0, 1.0, 1.0};
    GaString ca(4, 0), cb(4, 0);
    crossover(CrossoverKind::single_point, a, b, ca, cb, rng);
    // Each child must be a prefix of one parent and suffix of the other.
    int switches = 0;
    for (std::size_t i = 1; i < 4; ++i)
        if (ca.genes()[i] != ca.genes()[i - 1]) ++switches;
    EXPECT_LE(switches, 1);
}

TEST(Operators, MutationRateZeroLeavesUntouched) {
    Rng rng(9);
    GaString s = GaString::random(10, 2, rng);
    const auto before = s.genes();
    mutate(MutationKind::gaussian, s, 0.0, 0.1, rng);
    EXPECT_EQ(s.genes(), before);
}

TEST(Operators, MutationRateOneChangesGenes) {
    Rng rng(11);
    GaString s = GaString::random(20, 0, rng);
    const auto before = s.genes();
    mutate(MutationKind::uniform_reset, s, 1.0, 0.0, rng);
    int changed = 0;
    for (std::size_t i = 0; i < before.size(); ++i)
        if (s.genes()[i] != before[i]) ++changed;
    EXPECT_GT(changed, 15);
}

// ----------------------------------------------------------------- pareto

TEST(Pareto, DominanceDefinition) {
    EXPECT_TRUE(dominates({2.0, 2.0}, {1.0, 1.0}, max2));
    EXPECT_TRUE(dominates({2.0, 1.0}, {1.0, 1.0}, max2));
    EXPECT_FALSE(dominates({1.0, 1.0}, {1.0, 1.0}, max2)); // equal
    EXPECT_FALSE(dominates({2.0, 0.0}, {1.0, 1.0}, max2)); // trade-off
    // Direction flip.
    EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}, min2));
}

TEST(Pareto, NanNeverDominates) {
    EXPECT_FALSE(dominates({nan_v, 5.0}, {0.0, 0.0}, max2));
    EXPECT_TRUE(dominates({0.0, 0.0}, {nan_v, 5.0}, max2));
}

TEST(Pareto, PaperConditionsHold) {
    // Condition (a): members of the front are mutually non-dominated.
    // Condition (b): every non-member is dominated by a member.
    Rng rng(13);
    std::vector<std::vector<double>> objs;
    for (int i = 0; i < 200; ++i)
        objs.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    const auto front = pareto_front_indices(objs, max2);
    ASSERT_FALSE(front.empty());
    for (std::size_t a : front)
        for (std::size_t b : front)
            EXPECT_FALSE(dominates(objs[a], objs[b], max2));
    std::vector<bool> in_front(objs.size(), false);
    for (std::size_t f : front) in_front[f] = true;
    for (std::size_t i = 0; i < objs.size(); ++i) {
        if (in_front[i]) continue;
        bool dominated = false;
        for (std::size_t f : front)
            if (dominates(objs[f], objs[i], max2)) {
                dominated = true;
                break;
            }
        EXPECT_TRUE(dominated) << "point " << i << " not dominated by the front";
    }
}

// Property: the fast 2-D front equals the naive front on random clouds.
class Pareto2dEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(Pareto2dEquivalence, MatchesNaive) {
    Rng rng(100 + GetParam());
    std::vector<std::vector<double>> objs;
    const int n = 50 + 37 * GetParam();
    for (int i = 0; i < n; ++i)
        objs.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
    // Inject duplicates and NaN failures.
    objs.push_back(objs[0]);
    objs.push_back({nan_v, 1.0});
    auto naive = pareto_front_indices(objs, max2);
    auto fast = pareto_front_indices_2d(objs, max2);
    std::sort(naive.begin(), naive.end());
    std::sort(fast.begin(), fast.end());
    EXPECT_EQ(naive, fast);
}

INSTANTIATE_TEST_SUITE_P(Clouds, Pareto2dEquivalence, ::testing::Range(0, 8));

TEST(Pareto, NonDominatedSortRanksCorrectly) {
    // Two nested fronts.
    const std::vector<std::vector<double>> objs = {
        {4.0, 1.0}, {3.0, 2.0}, {1.0, 4.0}, // front 0
        {2.0, 1.0}, {1.0, 2.0},             // front 1
        {0.5, 0.5},                         // front 2
    };
    const auto fronts = non_dominated_sort(objs, max2);
    ASSERT_EQ(fronts.size(), 3u);
    EXPECT_EQ(fronts[0].size(), 3u);
    EXPECT_EQ(fronts[1].size(), 2u);
    EXPECT_EQ(fronts[2].size(), 1u);
}

TEST(Pareto, CrowdingDistanceBoundariesInfinite) {
    const std::vector<std::vector<double>> objs = {
        {1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}};
    const std::vector<std::size_t> subset = {0, 1, 2, 3};
    const auto d = crowding_distance(objs, subset, max2);
    EXPECT_TRUE(std::isinf(d[0]));
    EXPECT_TRUE(std::isinf(d[3]));
    EXPECT_TRUE(std::isfinite(d[1]));
    EXPECT_NEAR(d[1], d[2], 1e-12); // symmetric spacing
}

TEST(Pareto, Hypervolume2dKnownValue) {
    // Maximise both; reference (0,0); points (1,2) and (2,1):
    // area = 1*2 + (2-1)*1 = 3.
    const std::vector<std::vector<double>> front = {{1.0, 2.0}, {2.0, 1.0}};
    EXPECT_NEAR(hypervolume_2d(front, {0.0, 0.0}, max2), 3.0, 1e-12);
    // Dominated point adds nothing.
    const std::vector<std::vector<double>> with_dup = {{1.0, 2.0}, {2.0, 1.0},
                                                       {0.5, 0.5}};
    EXPECT_NEAR(hypervolume_2d(with_dup, {0.0, 0.0}, max2), 3.0, 1e-12);
}

TEST(Pareto, HypervolumeMinimisationOrientation) {
    // Minimise both; reference (4,4); single point (1,1): area 9.
    const std::vector<std::vector<double>> front = {{1.0, 1.0}};
    EXPECT_NEAR(hypervolume_2d(front, {4.0, 4.0}, min2), 9.0, 1e-12);
}

// ------------------------------------------------------------- optimisers

TEST(Wbga, SharingDividesByNicheCount) {
    // Two identical weight vectors niche together; the isolated one keeps
    // its fitness.
    const std::vector<double> fitness = {1.0, 1.0, 1.0};
    const std::vector<std::vector<double>> weights = {
        {1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
    const auto shared = share_fitness(fitness, weights, 0.3);
    EXPECT_NEAR(shared[0], 0.5, 1e-12);
    EXPECT_NEAR(shared[1], 0.5, 1e-12);
    EXPECT_NEAR(shared[2], 1.0, 1e-12);
}

TEST(Wbga, ConfigValidation) {
    const SchafferProblem problem;
    WbgaConfig bad;
    bad.population = 1;
    EXPECT_THROW((void)Wbga(problem, bad), InvalidInputError);
    WbgaConfig bad2;
    bad2.elites = bad2.population;
    EXPECT_THROW((void)Wbga(problem, bad2), InvalidInputError);
}

TEST(Wbga, FindsSchafferFront) {
    const SchafferProblem problem;
    WbgaConfig cfg;
    cfg.population = 40;
    cfg.generations = 40;
    const Wbga opt(problem, cfg);
    Rng rng(17);
    const WbgaResult res = opt.run(rng);
    EXPECT_EQ(res.evaluations, 1600u);
    EXPECT_EQ(res.archive.size(), 1600u);

    std::vector<std::vector<double>> objs;
    for (const auto& e : res.archive) objs.push_back(e.objectives);
    const auto front = pareto_front_indices_2d(objs, problem.objectives());
    EXPECT_GT(front.size(), 10u);
    // Pareto-optimal set of SCH is x in [0, 2].
    for (std::size_t idx : front) {
        const double x = res.archive[idx].params[0];
        EXPECT_GE(x, -0.15);
        EXPECT_LE(x, 2.15);
    }
}

TEST(Wbga, DeterministicForSeed) {
    const ToyAmplifierProblem problem;
    WbgaConfig cfg;
    cfg.population = 16;
    cfg.generations = 8;
    const Wbga opt(problem, cfg);
    Rng r1(5), r2(5);
    const auto a = opt.run(r1);
    const auto b = opt.run(r2);
    ASSERT_EQ(a.archive.size(), b.archive.size());
    for (std::size_t i = 0; i < a.archive.size(); ++i)
        EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives);
}

TEST(Wbga, BestFitnessGenerallyImproves) {
    const ZdtProblem problem(1, 12);
    WbgaConfig cfg;
    cfg.population = 30;
    cfg.generations = 30;
    const Wbga opt(problem, cfg);
    Rng rng(23);
    const auto res = opt.run(rng);
    ASSERT_EQ(res.best_fitness_history.size(), 30u);
    // Not strictly monotone (normalisation is per-generation), but late
    // generations should beat the first.
    const double first = res.best_fitness_history.front();
    double late = 0.0;
    for (std::size_t i = 25; i < 30; ++i)
        late = std::max(late, res.best_fitness_history[i]);
    EXPECT_GE(late, first * 0.9);
}

TEST(Wbga, WeightsInArchiveAreNormalised) {
    const ToyAmplifierProblem problem;
    WbgaConfig cfg;
    cfg.population = 10;
    cfg.generations = 4;
    const Wbga opt(problem, cfg);
    Rng rng(31);
    const auto res = opt.run(rng);
    for (const auto& e : res.archive) {
        double sum = 0.0;
        for (double w : e.weights) sum += w;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(Nsga2, ConvergesTowardZdt1Front) {
    const ZdtProblem problem(1, 10);
    Nsga2Config cfg;
    cfg.population = 40;
    cfg.generations = 60;
    const Nsga2 opt(problem, cfg);
    Rng rng(41);
    const auto res = opt.run(rng);
    // Rank-0 solutions should be near the true front f2 = 1 - sqrt(f1).
    std::vector<std::vector<double>> objs;
    for (const auto& e : res.final_population) objs.push_back(e.objectives);
    const auto front = pareto_front_indices_2d(objs, problem.objectives());
    ASSERT_GT(front.size(), 5u);
    double worst_gap = 0.0;
    for (std::size_t idx : front) {
        const double f1 = objs[idx][0];
        const double f2 = objs[idx][1];
        worst_gap = std::max(worst_gap, f2 - problem.true_front_f2(f1));
    }
    EXPECT_LT(worst_gap, 1.2); // far below the g ~ 5.5 of random sampling
}

TEST(Nsga2, BeatsRandomSearchOnZdt1Hypervolume) {
    const ZdtProblem problem(1, 10);
    const std::vector<double> ref = {1.1, 10.0};

    Nsga2Config cfg;
    cfg.population = 30;
    cfg.generations = 30;
    const Nsga2 opt(problem, cfg);
    Rng rng(51);
    const auto ga = opt.run(rng);

    Rng rng2(52);
    const auto rs = random_search(problem, 900, rng2);

    auto front_hv = [&](const std::vector<EvaluatedIndividual>& archive) {
        std::vector<std::vector<double>> objs;
        for (const auto& e : archive) objs.push_back(e.objectives);
        const auto front = pareto_front_indices_2d(objs, problem.objectives());
        std::vector<std::vector<double>> pts;
        for (std::size_t i : front) pts.push_back(objs[i]);
        return hypervolume_2d(pts, ref, problem.objectives());
    };
    EXPECT_GT(front_hv(ga.archive), front_hv(rs.archive));
}

TEST(RandomSearch, CoversBoxUniformly) {
    const ToyAmplifierProblem problem;
    Rng rng(61);
    const auto res = random_search(problem, 500, rng);
    EXPECT_EQ(res.evaluations, 500u);
    double lo = 1e9, hi = -1e9;
    for (const auto& e : res.archive) {
        lo = std::min(lo, e.params[0]);
        hi = std::max(hi, e.params[0]);
    }
    EXPECT_LT(lo, 1.5);
    EXPECT_GT(hi, 7.5);
}

// ------------------------------------------------------ robustness channel

TEST(Robustness, ConfigValidation) {
    RobustnessConfig cfg;
    validate_robustness_config(cfg); // defaults are valid
    cfg.yield_weight = 1.5;
    EXPECT_THROW(validate_robustness_config(cfg), InvalidInputError);
    cfg.yield_weight = -0.1;
    EXPECT_THROW(validate_robustness_config(cfg), InvalidInputError);
    cfg.yield_weight = 0.5;
    cfg.min_yield = 0.0; // min_yield only matters in constraint mode
    validate_robustness_config(cfg);
    cfg.mode = RobustnessMode::constraint;
    EXPECT_THROW(validate_robustness_config(cfg), InvalidInputError);
    cfg.min_yield = 1.2;
    EXPECT_THROW(validate_robustness_config(cfg), InvalidInputError);
    cfg.min_yield = 1.0;
    validate_robustness_config(cfg);
}

TEST(Robustness, RobustFitnessWeightAndConstraintModes) {
    RobustnessConfig cfg;
    cfg.yield_weight = 0.25;
    // NaN = unprobed: the fitness must pass through bit-identically.
    EXPECT_DOUBLE_EQ(robust_fitness(0.8, nan_v, cfg), 0.8);
    // Weight blend, and clamping of an out-of-range estimate.
    EXPECT_DOUBLE_EQ(robust_fitness(0.8, 0.4, cfg), 0.75 * 0.8 + 0.25 * 0.4);
    EXPECT_DOUBLE_EQ(robust_fitness(0.8, 1.7, cfg), 0.75 * 0.8 + 0.25);
    EXPECT_DOUBLE_EQ(robust_fitness(0.8, -0.3, cfg), 0.75 * 0.8);
    // Constraint mode: proportional penalty below the target, none at or
    // above it.
    cfg.mode = RobustnessMode::constraint;
    cfg.min_yield = 0.8;
    EXPECT_DOUBLE_EQ(robust_fitness(0.6, 0.4, cfg), 0.6 * 0.5);
    EXPECT_DOUBLE_EQ(robust_fitness(0.6, 0.8, cfg), 0.6);
    EXPECT_DOUBLE_EQ(robust_fitness(0.6, 1.0, cfg), 0.6);
    EXPECT_DOUBLE_EQ(robust_fitness(0.6, nan_v, cfg), 0.6);
}

TEST(Robustness, ProbeContractOffPreActivationAndSizeChecked) {
    const std::vector<std::vector<double>> pts = {{1.0}, {2.0}, {3.0}};
    RobustnessConfig off;
    for (double r : probe_population_robustness(off, pts, 0))
        EXPECT_TRUE(std::isnan(r));

    int calls = 0;
    RobustnessConfig cfg;
    cfg.activation_generation = 2;
    cfg.probe = [&](const std::vector<std::vector<double>>& p, std::size_t) {
        ++calls;
        return std::vector<double>(p.size(), 0.5);
    };
    // Pre-activation generations must not even invoke the probe.
    for (double r : probe_population_robustness(cfg, pts, 1))
        EXPECT_TRUE(std::isnan(r));
    EXPECT_EQ(calls, 0);
    const auto probed = probe_population_robustness(cfg, pts, 2);
    EXPECT_EQ(calls, 1);
    for (double r : probed) EXPECT_DOUBLE_EQ(r, 0.5);

    cfg.probe = [](const std::vector<std::vector<double>>&, std::size_t) {
        return std::vector<double>{0.5};
    };
    EXPECT_THROW((void)probe_population_robustness(cfg, pts, 2),
                 InvalidInputError);
}

TEST(Robustness, ProbeIndicesSelectTopKTiesTowardLowerIndex) {
    const std::vector<double> fitness = {0.1, 0.9, 0.9, 0.5};
    EXPECT_EQ(robustness_probe_indices(fitness, 2),
              (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(robustness_probe_indices(fitness, 3),
              (std::vector<std::size_t>{1, 2, 3}));
    EXPECT_EQ(robustness_probe_indices(fitness, 0),
              (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(robustness_probe_indices(fitness, 9),
              (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Robustness, AppendObjectiveClampsNanAndCapsAtTarget) {
    const std::vector<std::vector<double>> objs = {{1.0, 2.0}, {3.0, 4.0}};
    RobustnessConfig cfg;
    cfg.mode = RobustnessMode::constraint;
    cfg.min_yield = 0.9;
    std::vector<ObjectiveSpec> specs = max2;
    const auto ext = append_robustness_objective(objs, {nan_v, 0.95}, cfg, specs);
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs.back().name, "robustness");
    EXPECT_EQ(specs.back().dir, Direction::maximize);
    // NaN earns no robustness credit; the constraint caps at the target.
    EXPECT_DOUBLE_EQ(ext[0][2], 0.0);
    EXPECT_DOUBLE_EQ(ext[1][2], 0.9);
    // Weight mode keeps the (clamped) estimate itself.
    cfg.mode = RobustnessMode::weight;
    std::vector<ObjectiveSpec> specs2 = max2;
    const auto ext2 = append_robustness_objective(objs, {1.7, 0.95}, cfg, specs2);
    EXPECT_DOUBLE_EQ(ext2[0][2], 1.0);
    EXPECT_DOUBLE_EQ(ext2[1][2], 0.95);

    EXPECT_THROW((void)append_robustness_objective(objs, {0.5}, cfg, specs),
                 InvalidInputError);
}

TEST(Wbga, RobustnessOffPathBitIdentical) {
    // The channel contract at optimiser level: a never-activating probe and
    // an all-NaN probe both reproduce the legacy run bit-for-bit.
    const ToyAmplifierProblem problem;
    WbgaConfig base;
    base.population = 16;
    base.generations = 6;
    const auto run_with = [&](const WbgaConfig& cfg) {
        Rng rng(5);
        return Wbga(problem, cfg).run(rng);
    };
    const auto legacy = run_with(base);

    int calls = 0;
    WbgaConfig dormant = base;
    dormant.robustness.activation_generation = base.generations;
    dormant.robustness.probe = [&](const std::vector<std::vector<double>>& p,
                                   std::size_t) {
        ++calls;
        return std::vector<double>(p.size(), 1.0);
    };
    WbgaConfig all_nan = base;
    all_nan.robustness.probe = [&](const std::vector<std::vector<double>>& p,
                                   std::size_t) {
        ++calls;
        return std::vector<double>(p.size(), nan_v);
    };
    for (const auto& res : {run_with(dormant), run_with(all_nan)}) {
        ASSERT_EQ(res.archive.size(), legacy.archive.size());
        for (std::size_t i = 0; i < res.archive.size(); ++i) {
            EXPECT_EQ(res.archive[i].objectives, legacy.archive[i].objectives);
            EXPECT_EQ(res.archive[i].fitness, legacy.archive[i].fitness);
            EXPECT_EQ(res.archive[i].params, legacy.archive[i].params);
            EXPECT_TRUE(std::isnan(res.archive[i].robustness));
        }
    }
    // The dormant probe never fired; the all-NaN one fired once per
    // generation.
    EXPECT_EQ(calls, 6);
}

TEST(Wbga, RobustnessEntersFitnessAndArchive) {
    // yield_weight 1 makes the blended fitness *equal* the (clamped) probe
    // value - the sharpest possible check that the channel reaches
    // selection.
    const ToyAmplifierProblem problem;
    WbgaConfig cfg;
    cfg.population = 10;
    cfg.generations = 4;
    cfg.robustness.activation_generation = 2;
    cfg.robustness.yield_weight = 1.0;
    cfg.robustness.probe = [](const std::vector<std::vector<double>>& p,
                              std::size_t) {
        return std::vector<double>(p.size(), 0.25);
    };
    Rng rng(7);
    const auto res = Wbga(problem, cfg).run(rng);
    ASSERT_EQ(res.archive.size(), 40u);
    std::size_t probed = 0;
    for (const auto& e : res.archive) {
        if (std::isnan(e.robustness)) continue;
        ++probed;
        EXPECT_DOUBLE_EQ(e.robustness, 0.25);
        EXPECT_DOUBLE_EQ(e.fitness, 0.25);
    }
    // Generations 2 and 3 probed the whole population of 10.
    EXPECT_EQ(probed, 20u);
}

TEST(Wbga, RobustnessMaxPointsTiersTheProbe) {
    const ToyAmplifierProblem problem;
    WbgaConfig cfg;
    cfg.population = 12;
    cfg.generations = 3;
    cfg.robustness.max_points = 3;
    std::vector<std::size_t> batch_sizes;
    cfg.robustness.probe = [&](const std::vector<std::vector<double>>& p,
                               std::size_t) {
        batch_sizes.push_back(p.size());
        return std::vector<double>(p.size(), 1.0);
    };
    Rng rng(9);
    const auto res = Wbga(problem, cfg).run(rng);
    // Every probe call saw exactly the top-K cohort.
    ASSERT_EQ(batch_sizes.size(), 3u);
    for (std::size_t n : batch_sizes) EXPECT_EQ(n, 3u);
    std::size_t probed = 0;
    for (const auto& e : res.archive)
        if (!std::isnan(e.robustness)) ++probed;
    EXPECT_EQ(probed, 9u);
}

TEST(Wbga, RobustnessConfigValidatedAtConstruction) {
    const ToyAmplifierProblem problem;
    WbgaConfig cfg;
    cfg.robustness.yield_weight = 2.0;
    EXPECT_THROW((void)Wbga(problem, cfg), InvalidInputError);
}

TEST(Nsga2, RobustnessOffPathBitIdentical) {
    const ZdtProblem problem(1, 6);
    Nsga2Config base;
    base.population = 12;
    base.generations = 8;
    const auto run_with = [&](const Nsga2Config& cfg) {
        Rng rng(11);
        return Nsga2(problem, cfg).run(rng);
    };
    const auto legacy = run_with(base);

    Nsga2Config all_nan = base;
    all_nan.robustness.probe = [](const std::vector<std::vector<double>>& p,
                                  std::size_t) {
        return std::vector<double>(p.size(), nan_v);
    };
    const auto res = run_with(all_nan);
    ASSERT_EQ(res.final_population.size(), legacy.final_population.size());
    for (std::size_t i = 0; i < res.final_population.size(); ++i) {
        EXPECT_EQ(res.final_population[i].objectives,
                  legacy.final_population[i].objectives);
        EXPECT_EQ(res.final_population[i].params,
                  legacy.final_population[i].params);
        EXPECT_TRUE(std::isnan(res.final_population[i].robustness));
    }
}

TEST(Nsga2, RobustnessRecordedFromProbe) {
    // The probe is a pure function of the first parameter, so every
    // surviving individual must carry exactly the value its point maps to.
    const ZdtProblem problem(1, 6);
    Nsga2Config cfg;
    cfg.population = 12;
    cfg.generations = 5;
    cfg.robustness.probe = [](const std::vector<std::vector<double>>& p,
                              std::size_t) {
        std::vector<double> r(p.size());
        for (std::size_t i = 0; i < p.size(); ++i)
            r[i] = 0.5 + 0.5 * std::clamp(p[i][0], 0.0, 1.0) / 2.0;
        return r;
    };
    Rng rng(13);
    const auto res = Nsga2(problem, cfg).run(rng);
    for (const auto& e : res.final_population) {
        const double expected = 0.5 + 0.5 * std::clamp(e.params[0], 0.0, 1.0) / 2.0;
        ASSERT_FALSE(std::isnan(e.robustness));
        EXPECT_DOUBLE_EQ(e.robustness, expected);
    }
}

TEST(TestProblems, ZdtTrueFrontAtGEquals1) {
    const ZdtProblem z1(1, 5);
    std::vector<double> p(5, 0.0);
    p[0] = 0.25;
    const auto f = z1.evaluate(p);
    EXPECT_DOUBLE_EQ(f[0], 0.25);
    EXPECT_NEAR(f[1], z1.true_front_f2(0.25), 1e-12);
}

TEST(TestProblems, ToyAmplifierTradeoffDirection) {
    const ToyAmplifierProblem t;
    const auto low_b = t.evaluate({1.0, 0.5});
    const auto high_b = t.evaluate({8.0, 0.5});
    EXPECT_GT(high_b[0], low_b[0]); // more gain
    EXPECT_LT(high_b[1], low_b[1]); // less phase margin
}

} // namespace
