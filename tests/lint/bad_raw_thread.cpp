// Lint fixture (never compiled): spawning threads outside util::ThreadPool
// bypasses the deterministic work partitioning. Expect [raw-thread] only.
#include <thread>

void run_sides(void (*left)(), void (*right)()) {
    std::thread worker(left);
    right();
    worker.join();
}
