// Lint fixture (never compiled): the mutex's guarded data is declared via
// YPM_GUARDED_BY, so the rule is satisfied. Expect no findings.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

class Registry {
public:
    void put(int value);

private:
    ypm::util::Mutex mutex_;
    int last_ YPM_GUARDED_BY(mutex_) = 0;
};
