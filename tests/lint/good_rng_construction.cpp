// Lint fixture (never compiled): streams are derived from an existing Rng
// via child(), never constructed fresh. Expect no findings.
#include <cstddef>

namespace ypm {
class Rng;
}

// Declarations and references to Rng are fine - only `Rng(...)` calls and
// raw std engine types are constructions.
void stochastic_item(const ypm::Rng& base, std::size_t item_index);
double sample_one(ypm::Rng& stream);
