// Lint fixture (never compiled): parallel work rides the shared pool, so
// chunking stays deterministic in item index. Expect no findings.
#include <cstddef>

namespace ypm {
class ThreadPool;
void parallel_fill(ThreadPool& pool, double* out, std::size_t n);
} // namespace ypm
