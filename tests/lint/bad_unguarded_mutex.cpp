// Lint fixture (never compiled): a mutex member with no annotation naming
// what it protects - the analysis cannot check its discipline. Expect
// [unguarded-mutex] findings only.
#include "util/mutex.hpp"

class Registry {
public:
    void put(int value);

private:
    ypm::util::Mutex mutex_;
    int last_ = 0;
};
