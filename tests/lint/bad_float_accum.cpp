// Lint fixture (never compiled): summing doubles in unordered-container
// iteration order gives a different rounding trajectory per standard
// library / hash seed. Expect [float-accum] findings only.
#include <unordered_map>

double total_weight(const std::unordered_map<int, double>& weights) {
    double sum = 0.0;
    for (const auto& [key, weight] : weights) {
        sum += weight;
    }
    return sum;
}
