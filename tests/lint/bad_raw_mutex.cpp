// Lint fixture (never compiled): raw std lock types are invisible to
// Clang's -Wthread-safety analysis. Expect [raw-mutex] findings only.
#include <mutex>

void locked_add(std::mutex& mutex, int& value, int delta) {
    const std::lock_guard<std::mutex> lock(mutex);
    value += delta;
}
