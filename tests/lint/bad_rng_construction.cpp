// Lint fixture (never compiled): ad-hoc generator construction creates an
// undocumented seed root, so the run is no longer reproducible from the
// one configured seed. Expect [rng-construction] findings only.
#include <cstdint>

namespace ypm {
class Rng;
}

void perturb(double* values, std::uint64_t n) {
    auto rng = ypm::Rng(12345); // ad-hoc reseed, not a child stream
    (void)rng;
    (void)values;
    (void)n;
}
