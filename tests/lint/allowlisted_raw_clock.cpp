// Lint fixture (never compiled): a genuine raw-clock violation that the
// fixture allowlist suppresses - exercises the allowlist matching path.
// The self-test asserts it IS flagged without the allowlist and clean
// with it (the real-tree analogue is util/clock.hpp, the one clock seam).
#include <chrono>

double stage_seconds() {
    const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
