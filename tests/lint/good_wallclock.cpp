// Lint fixture (never compiled): deterministic seed derivation - the
// pattern the wallclock rule steers code towards. Expect no findings.
#include <cstdint>

// Mentioning steady_clock::now() or random_device in a comment is fine:
// the linter strips comments and strings before matching.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index) {
    return root * 0x9e3779b97f4a7c15ULL + index;
}
