// Lint fixture (never compiled): wall-clock / OS-entropy sources in src/
// would break bit-reproducibility. Expect [wallclock] findings only.
#include <chrono>
#include <random>

unsigned make_seed() {
    std::random_device rd; // entropy source: results differ per run
    return rd();
}

double now_seconds() {
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}
