// Lint fixture (never compiled): OS-entropy / wall-time sources in src/
// would break bit-reproducibility. Expect [wallclock] findings only
// (direct chrono clock reads are the raw-clock rule's business).
#include <ctime>
#include <random>

unsigned make_seed() {
    std::random_device rd; // entropy source: results differ per run
    return rd();
}

long stamp() {
    return static_cast<long>(time(nullptr)); // calendar time, not monotonic
}
