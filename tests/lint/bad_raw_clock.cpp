// Lint fixture (never compiled): direct chrono clock reads bypass the
// util/clock.hpp seam, so their timestamps live on a private epoch the
// tracer and ledgers cannot correlate. Expect [raw-clock] findings only.
#include <chrono>

double now_seconds() {
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double wall_stamp() {
    const auto t = std::chrono::system_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}
