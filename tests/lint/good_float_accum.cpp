// Lint fixture (never compiled): ordered iteration and integer counting
// over unordered containers are both fine. Expect no findings.
#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

double total_weight(const std::map<int, double>& weights) {
    double sum = 0.0;
    for (const auto& [key, weight] : weights) sum += weight;
    return sum;
}

std::size_t total_idle(
    const std::unordered_map<int, std::vector<int>>& idle) {
    std::size_t n = 0;
    for (const auto& [key, bucket] : idle) n += bucket.size();
    return n;
}
