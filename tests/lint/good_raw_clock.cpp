// Lint fixture (never compiled): timing through the util/clock.hpp seam -
// the pattern the raw-clock rule steers code towards. Expect no findings.
// Mentioning steady_clock::now() in a comment is fine: the linter strips
// comments and strings before matching.
#include <cstdint>

namespace util {
using TickNs = long long;
TickNs now_ns();
double seconds_since(TickNs t0);
} // namespace util

double timed_stage() {
    const util::TickNs t0 = util::now_ns();
    return util::seconds_since(t0);
}
