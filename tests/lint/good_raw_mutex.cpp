// Lint fixture (never compiled): the annotated util wrappers, which the
// thread-safety analysis fully sees. Expect no findings.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

class Counter {
public:
    void add(int delta) {
        const ypm::util::MutexLock lock(mutex_);
        value_ += delta;
    }

private:
    ypm::util::Mutex mutex_;
    int value_ YPM_GUARDED_BY(mutex_) = 0;
};
