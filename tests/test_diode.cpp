// Junction diode tests: Shockley law, Newton convergence with exponential
// limiting, series resistance, rectifier behaviour and AC junction cap.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/analysis/dc_sweep.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/diode.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::spice;

TEST(Diode, ValidatesParameters) {
    Circuit c;
    DiodeParams bad;
    bad.is = 0.0;
    EXPECT_THROW(c.add<Diode>("d", c.node("a"), ground, bad), InvalidInputError);
    bad = DiodeParams{};
    bad.rs = -1.0;
    EXPECT_THROW(c.add<Diode>("d2", c.node("a"), ground, bad), InvalidInputError);
}

TEST(Diode, ForwardDropNearIdealLaw) {
    // 1 mA through a silicon-ish diode: vd = n*Vt*ln(1 + I/Is).
    Circuit c;
    const NodeId a = c.node("a");
    c.add<CurrentSource>("ib", ground, a, 1e-3);
    DiodeParams p;
    p.is = 1e-14;
    c.add<Diode>("d1", a, ground, p);
    const Solution op = solve_op(c);
    const double expected = 0.02585 * std::log(1.0 + 1e-3 / 1e-14);
    EXPECT_NEAR(op.voltage(a), expected, 1e-4);
}

TEST(Diode, EmissionCoefficientScalesDrop) {
    auto drop = [](double n) {
        Circuit c;
        const NodeId a = c.node("a");
        c.add<CurrentSource>("ib", ground, a, 1e-3);
        DiodeParams p;
        p.n = n;
        c.add<Diode>("d1", a, ground, p);
        return solve_op(c).voltage(a);
    };
    EXPECT_NEAR(drop(2.0) / drop(1.0), 2.0, 0.01);
}

TEST(Diode, ReverseLeakageIsTiny) {
    // Reverse biased through a resistor: the diode itself contributes -Is,
    // and the solver's gmin floor adds ~|V|*gmin per node (10 pA here) -
    // the measured leakage must sit at that scale, far below any signal.
    Circuit c;
    const NodeId top = c.node("top");
    const NodeId mid = c.node("mid");
    auto& vs = c.add<VoltageSource>("v1", top, ground, -5.0);
    c.add<Resistor>("r1", top, mid, 1e3);
    c.add<Diode>("d1", mid, ground, DiodeParams{});
    const Solution op = solve_op(c);
    const double i = -op.branch_current(vs.current_branch());
    EXPECT_LT(i, 0.0);            // flows in the reverse direction
    EXPECT_GT(i, -2e-11);         // bounded by the gmin floor
    // And the node sits at the full reverse voltage (diode is off).
    EXPECT_NEAR(op.voltage(mid), -5.0, 1e-3);
}

TEST(Diode, RectifierTransferCurve) {
    // Half-wave rectifier: output follows input minus ~0.6-0.8 V when
    // forward, stays near zero when reverse.
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vin", in, ground, 0.0);
    c.add<Diode>("d1", in, out, DiodeParams{});
    c.add<Resistor>("rl", out, ground, 1e4);
    const auto sweep = run_dc_sweep(c, "vin", {-2.0, -1.0, 0.0, 1.0, 2.0, 3.0});
    const auto v = sweep.node_voltage(out);
    EXPECT_NEAR(v[0], 0.0, 1e-3);
    EXPECT_NEAR(v[1], 0.0, 1e-3);
    EXPECT_GT(v[4], 1.1); // 2 V in -> ~1.3 V out
    EXPECT_GT(v[5], v[4]); // monotone
    EXPECT_NEAR(v[5] - v[4], 1.0, 0.1); // incremental gain ~ 1 when on
}

TEST(Diode, SeriesResistanceAddsOhmicDrop) {
    auto drop_at_10ma = [](double rs) {
        Circuit c;
        const NodeId a = c.node("a");
        c.add<CurrentSource>("ib", ground, a, 10e-3);
        DiodeParams p;
        p.rs = rs;
        c.add<Diode>("d1", a, ground, p);
        return solve_op(c).voltage(a);
    };
    const double delta = drop_at_10ma(10.0) - drop_at_10ma(0.0);
    EXPECT_NEAR(delta, 0.1, 1e-3); // 10 mA * 10 ohm
}

TEST(Diode, ConvergesFromColdStartAtHighBias) {
    // 5 V straight across a diode + small resistor: brutal exponential;
    // the limiting must keep Newton finite.
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId mid = c.node("mid");
    c.add<VoltageSource>("v1", in, ground, 5.0);
    c.add<Resistor>("r1", in, mid, 10.0);
    c.add<Diode>("d1", mid, ground, DiodeParams{});
    const Solution op = solve_op(c);
    EXPECT_GT(op.voltage(mid), 0.5);
    EXPECT_LT(op.voltage(mid), 1.3);
}

TEST(Diode, JunctionCapAppearsInAc) {
    // Reverse-biased diode behind a resistor forms an RC lowpass whose
    // corner is set by the junction capacitance.
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("v1", in, ground, 0.0, 1.0);
    c.add<Resistor>("r1", in, out, 1e6);
    DiodeParams p;
    p.cj0 = 10e-12;
    c.add<Diode>("d1", ground, out, p); // cathode at out: reverse biased
    const Solution op = solve_op(c);
    // At cj ~ cj0 (zero bias), fc ~ 1/(2 pi R cj0) ~ 15.9 kHz.
    const AcResult ac = run_ac(c, op, {15.9e3});
    const auto h = ac.transfer(out, in);
    EXPECT_NEAR(std::abs(h[0]), 1.0 / std::sqrt(2.0), 0.05);
}

TEST(Diode, GdMatchesFiniteDifference) {
    Circuit c;
    const NodeId a = c.node("a");
    auto& d = c.add<Diode>("d1", a, ground, DiodeParams{});
    for (double vd : {-1.0, 0.0, 0.3, 0.55, 0.7, 0.9}) {
        Solution x(1, 0);
        x.raw()[0] = vd;
        const auto op = d.op_info(x);
        Solution xp = x, xm = x;
        const double h = 1e-7;
        xp.raw()[0] += h;
        xm.raw()[0] -= h;
        const double fd = (d.op_info(xp).id - d.op_info(xm).id) / (2.0 * h);
        EXPECT_NEAR(op.gd, fd, std::max(std::fabs(fd) * 1e-4, 1e-16)) << "vd=" << vd;
    }
}

} // namespace
