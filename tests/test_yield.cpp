// Unit tests for the variance-reduction yield engine: shifted process
// sampling with exact likelihood ratios, the unnormalized fail-side weighted
// estimator, ISLE-style shift fitting, and the sequential streaming driver
// (zero-shift bit-identity with plain MC, early-stop determinism across
// inflight windows, importance sampling beating plain MC on a rare spec,
// adaptive multi-point budget allocation).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "circuits/ota.hpp"
#include "core/ota_mc.hpp"
#include "eval/engine.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/yield.hpp"
#include "process/process_card.hpp"
#include "process/sampler.hpp"
#include "process/variation.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "yield/scenarios.hpp"
#include "yield/sequential.hpp"
#include "yield/shift.hpp"
#include "yield/weighted.hpp"

namespace {

using namespace ypm;

eval::Engine make_engine(bool parallel = true) {
    eval::EngineConfig config;
    config.parallel = parallel;
    config.cache_capacity = 0;
    return eval::Engine(config);
}

// The synthetic kernels and the mixture-draw reference implementation live
// in the shared scenario registry (yield/scenarios.hpp), consumed by this
// suite, the conformance suite and the benches alike.
using yield::draw_mixture_u;
using yield::synthetic_factory;

// --------------------------------------------------------- shifted sampler

std::vector<process::MosGeometry> two_devices() {
    return {{"m1", false, 20e-6, 1e-6}, {"m2", true, 30e-6, 2e-6}};
}

TEST(ShiftedSampler, ZeroShiftBitIdenticalToPlainSample) {
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    const auto devices = two_devices();

    Rng plain_rng(42), shifted_rng(42);
    const process::Realization plain = sampler.sample(plain_rng, devices);
    const process::ShiftedDraw draw =
        sampler.sample_shifted(shifted_rng, devices, process::SampleShift{}, true);

    EXPECT_EQ(draw.log_weight, 0.0); // exactly zero, not approximately
    EXPECT_EQ(plain.global.dvth_n, draw.realization.global.dvth_n);
    EXPECT_EQ(plain.global.dvth_p, draw.realization.global.dvth_p);
    EXPECT_EQ(plain.global.kp_scale_n, draw.realization.global.kp_scale_n);
    EXPECT_EQ(plain.global.kp_scale_p, draw.realization.global.kp_scale_p);
    EXPECT_EQ(plain.global.cox_scale, draw.realization.global.cox_scale);
    for (const auto& dev : devices) {
        const auto& a = plain.local.at(dev.name);
        const auto& b = draw.realization.local.at(dev.name);
        EXPECT_EQ(a.dvth, b.dvth);
        EXPECT_EQ(a.kp_scale, b.kp_scale);
    }
    // Stream-consumption parity: the next draw must match too.
    EXPECT_EQ(plain_rng.uniform01(), shifted_rng.uniform01());
    // u record has the documented dimension.
    EXPECT_EQ(draw.u.size(), process::SampleShift::dimension(devices.size()));
}

TEST(ShiftedSampler, ShiftMovesTheRealizationMean) {
    const process::VariationSpec spec = process::VariationSpec::c35();
    const process::ProcessSampler sampler(process::ProcessCard::c35(), spec);
    process::SampleShift shift;
    shift.mu.assign(process::SampleShift::dimension(0), 0.0);
    shift.mu[0] = 2.0; // dvth_n global, in sigma units

    Rng rng(7);
    double mean = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        mean += sampler.sample_shifted(rng, {}, shift).realization.global.dvth_n;
    mean /= n;
    EXPECT_NEAR(mean, 2.0 * spec.global.sigma_vth_n,
                4.0 * spec.global.sigma_vth_n / std::sqrt(double(n)));
}

TEST(ShiftedSampler, LikelihoodRatioIntegratesToOne) {
    // E_q[w] = 1 for any proposal q absolutely continuous w.r.t. p.
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    process::SampleShift shift;
    shift.mu = {1.0, -0.5, 0.0, 0.8, -1.0};
    shift.scale = 1.5;

    Rng rng(11);
    double w_sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        w_sum += std::exp(sampler.sample_shifted(rng, {}, shift).log_weight);
    EXPECT_NEAR(w_sum / n, 1.0, 0.05);
}

TEST(ShiftedSampler, RejectsBadShift) {
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    Rng rng(1);
    process::SampleShift wrong_dim;
    wrong_dim.mu = {1.0, 2.0}; // device-free spaces have 5 dims
    EXPECT_THROW((void)sampler.sample_shifted(rng, {}, wrong_dim),
                 InvalidInputError);
    process::SampleShift bad_scale;
    bad_scale.scale = 0.0;
    EXPECT_THROW((void)sampler.sample_shifted(rng, {}, bad_scale),
                 InvalidInputError);
}

// ------------------------------------------------------- mixture proposals

TEST(MixtureSampler, OneComponentZeroShiftBitIdenticalToPlainSample) {
    // The acceptance pin: a one-component inactive mixture must consume the
    // RNG stream exactly like sample() (no component-selection draw) and
    // produce bit-identical realisations with log_weight exactly 0.
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    const auto devices = two_devices();

    for (const process::ProposalMixture& mix :
         {process::ProposalMixture{}, process::ProposalMixture::nominal()}) {
        Rng plain_rng(42), mix_rng(42);
        const process::Realization plain = sampler.sample(plain_rng, devices);
        const process::ShiftedDraw draw =
            sampler.sample_mixture(mix_rng, devices, mix, true);
        EXPECT_EQ(draw.log_weight, 0.0); // exactly zero, not approximately
        EXPECT_EQ(draw.component, 0u);
        EXPECT_EQ(plain.global.dvth_n, draw.realization.global.dvth_n);
        EXPECT_EQ(plain.global.cox_scale, draw.realization.global.cox_scale);
        for (const auto& dev : devices) {
            EXPECT_EQ(plain.local.at(dev.name).dvth,
                      draw.realization.local.at(dev.name).dvth);
            EXPECT_EQ(plain.local.at(dev.name).kp_scale,
                      draw.realization.local.at(dev.name).kp_scale);
        }
        // Stream-consumption parity: the next draw must match too.
        EXPECT_EQ(plain_rng.uniform01(), mix_rng.uniform01());
        EXPECT_EQ(draw.u.size(), process::SampleShift::dimension(devices.size()));
    }
}

TEST(MixtureSampler, OneShiftedComponentBitIdenticalToSampleShifted) {
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    process::SampleShift shift;
    shift.mu = {1.0, -0.5, 0.0, 0.8, -1.0};
    shift.scale = 1.3;

    Rng a(7), b(7);
    const process::ShiftedDraw single = sampler.sample_shifted(a, {}, shift, true);
    const process::ShiftedDraw mixed = sampler.sample_mixture(
        b, {}, process::ProposalMixture::single(shift), true);
    EXPECT_EQ(single.log_weight, mixed.log_weight);
    EXPECT_EQ(single.realization.global.dvth_n, mixed.realization.global.dvth_n);
    EXPECT_EQ(single.realization.global.cox_scale,
              mixed.realization.global.cox_scale);
    ASSERT_EQ(single.u.size(), mixed.u.size());
    for (std::size_t i = 0; i < single.u.size(); ++i)
        EXPECT_EQ(single.u[i], mixed.u[i]);
    EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(MixtureSampler, LogWeightMatchesBruteForceDensity) {
    // Two-component defensive mixture over the 5 global dims: the sampled
    // log weight must equal log phi(u) - log q_mix(u) evaluated by brute
    // force from the recorded standardized coordinates.
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    process::ProposalMixture mix;
    process::ProposalComponent nominal;
    nominal.weight = 0.25;
    mix.components.push_back(nominal);
    process::ProposalComponent shifted;
    shifted.mu = {2.0, 0.0, -1.0, 0.5, 0.0};
    shifted.scale = 1.2;
    shifted.weight = 0.75;
    mix.components.push_back(shifted);

    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const process::ShiftedDraw draw = sampler.sample_mixture(rng, {}, mix, true);
        ASSERT_EQ(draw.u.size(), 5u);
        // Brute force: log phi(u) - log sum_k p_k prod_i phi((u-mu_k)/s)/s,
        // constants cancelling (all sigmas of the global dims are > 0).
        double log_p = 0.0;
        std::vector<double> log_q = {std::log(0.25), std::log(0.75)};
        for (std::size_t d = 0; d < 5; ++d) {
            log_p += -0.5 * draw.u[d] * draw.u[d];
            log_q[0] += -0.5 * draw.u[d] * draw.u[d];
            const double t = (draw.u[d] - shifted.mu[d]) / shifted.scale;
            log_q[1] += -0.5 * t * t - std::log(shifted.scale);
        }
        const double peak = std::max(log_q[0], log_q[1]);
        const double expected =
            log_p - (peak + std::log(std::exp(log_q[0] - peak) +
                                     std::exp(log_q[1] - peak)));
        EXPECT_NEAR(draw.log_weight, expected, 1e-10);
        EXPECT_NEAR(draw.log_weight, mix.log_weight_of(draw.u), 1e-10);
    }
}

TEST(MixtureSampler, MixtureLikelihoodRatioIntegratesToOne) {
    // E_q[w] = 1 for any mixture proposal absolutely continuous w.r.t. the
    // nominal density - the defensive nominal component keeps the weights
    // bounded, so the estimate converges fast.
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    process::ProposalMixture mix;
    process::ProposalComponent nominal;
    nominal.weight = 0.2;
    mix.components.push_back(nominal);
    for (double sign : {1.0, -1.0}) {
        process::ProposalComponent comp;
        comp.mu = {2.0 * sign, 0.0, 0.0, -1.0 * sign, 0.0};
        comp.weight = 0.4;
        mix.components.push_back(comp);
    }

    Rng rng(11);
    double w_sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        w_sum += std::exp(sampler.sample_mixture(rng, {}, mix).log_weight);
    EXPECT_NEAR(w_sum / n, 1.0, 0.05);
}

TEST(MixtureSampler, ValidatesComponents) {
    const process::ProcessSampler sampler(process::ProcessCard::c35(),
                                          process::VariationSpec::c35());
    Rng rng(1);
    process::ProposalMixture bad_weight = process::ProposalMixture::nominal();
    bad_weight.components[0].weight = 0.0;
    EXPECT_THROW((void)sampler.sample_mixture(rng, {}, bad_weight),
                 InvalidInputError);
    process::ProposalMixture bad_scale = process::ProposalMixture::nominal();
    bad_scale.components[0].scale = -1.0;
    EXPECT_THROW((void)sampler.sample_mixture(rng, {}, bad_scale),
                 InvalidInputError);
    process::ProposalMixture bad_dim = process::ProposalMixture::nominal();
    bad_dim.components[0].mu = {1.0, 2.0}; // device-free spaces have 5 dims
    EXPECT_THROW((void)sampler.sample_mixture(rng, {}, bad_dim),
                 InvalidInputError);
    process::ProposalMixture empty;
    EXPECT_THROW((void)empty.pick_component(0.5), InvalidInputError);
}

// ------------------------------------------------------ weighted estimator

TEST(WeightedYield, UnityWeightsReduceToWilsonBitIdentically) {
    const std::vector<bool> flags = {true, true, false, true, true,
                                     true, false, true, true, true};
    const mc::YieldEstimate plain = mc::yield_from_flags(flags);
    for (const auto& log_weights :
         {std::vector<double>{}, std::vector<double>(flags.size(), 0.0)}) {
        const yield::WeightedYieldEstimate w =
            yield::weighted_yield_from_flags(flags, log_weights);
        EXPECT_FALSE(w.weighted);
        EXPECT_EQ(w.samples, plain.samples);
        EXPECT_EQ(w.passes, plain.passes);
        EXPECT_EQ(w.yield, plain.yield);
        EXPECT_EQ(w.ci_low, plain.ci_low);
        EXPECT_EQ(w.ci_high, plain.ci_high);
        EXPECT_EQ(w.ess, double(flags.size()));
    }
}

TEST(WeightedYield, HandComputedWeights) {
    // Four samples, fail-side weights {0.5, 0.5} (the pass weights never
    // enter): phat_fail = (0.5 + 0.5) / 4 = 0.25, yield = 0.75,
    // fail-side ESS = 1^2 / 0.5 = 2, max share = 0.5.
    const yield::WeightedYieldEstimate e = yield::weighted_yield_from_flags(
        {false, false, true, true},
        {std::log(0.5), std::log(0.5), std::log(3.0), 0.0});
    EXPECT_TRUE(e.weighted);
    EXPECT_EQ(e.samples, 4u);
    EXPECT_EQ(e.passes, 2u);
    EXPECT_NEAR(e.yield, 0.75, 1e-12);
    EXPECT_NEAR(e.ess, 2.0, 1e-12);
    EXPECT_NEAR(e.max_weight_share, 0.5, 1e-12);
    EXPECT_GE(e.ci_low, 0.0);
    EXPECT_LE(e.ci_high, 1.0);
    EXPECT_LT(e.ci_low, e.yield);
    EXPECT_GT(e.ci_high, e.yield);
}

TEST(WeightedYield, EstimatesGaussianTailProbability) {
    // P(Z > 3) = 1.3499e-3, estimated with a mean-3 proposal: the classic
    // importance-sampling correctness check.
    const double p_true = 1.349898e-3;
    Rng rng(17);
    const double m = 3.0;
    std::vector<bool> pass;
    std::vector<double> log_w;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double z = rng.gauss();
        const double u = m + z;
        pass.push_back(!(u > 3.0)); // "yield" = 1 - tail probability
        log_w.push_back(0.5 * z * z - 0.5 * u * u);
    }
    const yield::WeightedYieldEstimate e =
        yield::weighted_yield_from_flags(pass, log_w);
    EXPECT_TRUE(e.weighted);
    EXPECT_NEAR(1.0 - e.yield, p_true, 0.1 * p_true);
    // The weighted CI must cover the truth and be far tighter than plain
    // MC's at the same sample count (~2 orders of magnitude in variance).
    EXPECT_LE(e.ci_low, 1.0 - p_true + 1e-12);
    EXPECT_GE(e.ci_high, 1.0 - p_true - 1e-12);
    const double plain_hw = 1.96 * std::sqrt(p_true * (1 - p_true) / n);
    EXPECT_LT(e.half_width(), plain_hw / 3.0);
}

TEST(WeightedYield, LargeShiftDegradesEss) {
    // An overdone shift concentrates the weight on few samples: ESS and the
    // max-weight share must flag it.
    Rng rng(23);
    const double m = 6.0;
    std::vector<bool> pass;
    std::vector<double> log_w;
    for (int i = 0; i < 2000; ++i) {
        const double z = rng.gauss();
        const double u = m + z;
        pass.push_back(!(u > 3.0));
        log_w.push_back(0.5 * z * z - 0.5 * u * u);
    }
    const yield::WeightedYieldEstimate e =
        yield::weighted_yield_from_flags(pass, log_w);
    EXPECT_LT(e.ess, 0.2 * 2000.0);
    EXPECT_GT(e.max_weight_share, 0.01);
}

TEST(WeightedYield, ZeroObservedFailuresKeepsNonDegenerateCi) {
    // Regression: an active shift with no observed failures used to report
    // the point interval [1, 1] - certifying exactly 100 % yield on absence
    // of evidence - which let the sequential driver early-stop instantly.
    // Contract: fall back to the clean-sweep Wilson bound (conservative
    // under a failure-directed proposal) and flag ESS = 0.
    const yield::WeightedYieldEstimate e = yield::weighted_yield_from_flags(
        std::vector<bool>(200, true), std::vector<double>(200, 0.1));
    EXPECT_TRUE(e.weighted);
    EXPECT_EQ(e.yield, 1.0);
    EXPECT_EQ(e.ci_high, 1.0);
    EXPECT_LT(e.ci_low, 1.0); // never a point interval
    EXPECT_GT(e.ci_low, 0.97);
    EXPECT_GT(e.half_width(), 0.0);
    EXPECT_EQ(e.ess, 0.0);
    EXPECT_EQ(e.max_weight_share, 0.0);
}

TEST(WeightedYield, SingleObservedFailureKeepsConservativeCi) {
    // Regression: with exactly one observed failure the delta-method
    // variance rests on a single nonzero term - a lucky small-weight
    // failure used to certify a spuriously tight CI. Contract: until >= 2
    // fail-side samples are seen the interval is widened to
    // [clamp(yield - hw), 1] with hw at least the one-failure Wilson
    // half-width, mirroring the zero-failure Wilson fallback.
    const std::size_t n = 400;
    std::vector<bool> pass(n, true);
    pass[7] = false;
    std::vector<double> log_w(n, 0.0);
    log_w[7] = std::log(1e-3); // tiny weight: delta hw would be ~5e-6
    for (std::size_t i = 0; i < n; ++i)
        if (pass[i]) log_w[i] = 0.01;
    const yield::WeightedYieldEstimate e =
        yield::weighted_yield_from_flags(pass, log_w);
    EXPECT_TRUE(e.weighted);
    EXPECT_EQ(e.samples - e.passes, 1u);
    EXPECT_EQ(e.ci_high, 1.0); // upper edge stays open
    // The downside margin is at least the one-failure Wilson half-width.
    const auto [wlo, whi] = mc::wilson_interval(n - 1, n);
    EXPECT_GE(e.yield - e.ci_low + 1e-15, 0.5 * (whi - wlo));
    EXPECT_LT(e.ci_low, e.yield);

    // A second failure restores the delta-method interval (tight again).
    pass[13] = false;
    log_w[13] = std::log(1e-3);
    const yield::WeightedYieldEstimate e2 =
        yield::weighted_yield_from_flags(pass, log_w);
    EXPECT_EQ(e2.samples - e2.passes, 2u);
    EXPECT_LT(e2.half_width(), 0.5 * (whi - wlo));
}

TEST(WeightedYield, CombineStagesPoolsMomentsAcrossProposals) {
    // Two stages with weighted failures: the combination must pool the
    // exact fail-side moments (sample-count weighting), matching a direct
    // estimate over the concatenated data computed under per-stage weights.
    const std::vector<bool> f1 = {false, true, true, false};
    const std::vector<double> w1 = {std::log(0.5), 0.0, 0.2, std::log(0.25)};
    const std::vector<bool> f2 = {true, false, true, true, false, true};
    const std::vector<double> w2 = {0.0, std::log(0.75), 0.1,
                                    0.0, std::log(0.4), 0.3};
    const auto s1 = yield::weighted_yield_from_flags(f1, w1);
    const auto s2 = yield::weighted_yield_from_flags(f2, w2);
    const auto combined = yield::combine_stage_estimates({s1, s2});

    std::vector<bool> all_f = f1;
    all_f.insert(all_f.end(), f2.begin(), f2.end());
    std::vector<double> all_w = w1;
    all_w.insert(all_w.end(), w2.begin(), w2.end());
    const auto direct = yield::weighted_yield_from_flags(all_f, all_w);

    EXPECT_EQ(combined.samples, direct.samples);
    EXPECT_EQ(combined.passes, direct.passes);
    EXPECT_NEAR(combined.yield, direct.yield, 1e-12);
    EXPECT_NEAR(combined.ci_low, direct.ci_low, 1e-12);
    EXPECT_NEAR(combined.ci_high, direct.ci_high, 1e-12);
    EXPECT_NEAR(combined.ess, direct.ess, 1e-12);
    EXPECT_NEAR(combined.max_weight_share, direct.max_weight_share, 1e-12);
}

TEST(WeightedYield, CombineStagesEdgeCases) {
    // No stages (or only empty ones): the vacuous interval, never [0, 0].
    const auto empty = yield::combine_stage_estimates({});
    EXPECT_EQ(empty.samples, 0u);
    EXPECT_EQ(empty.ci_low, 0.0);
    EXPECT_EQ(empty.ci_high, 1.0);

    // One live stage: returned unchanged, bit-identically.
    const auto s = yield::weighted_yield_from_flags(
        {false, true, false, true}, {std::log(0.5), 0.0, std::log(0.5), 0.2});
    const auto one = yield::combine_stage_estimates(
        {yield::weighted_yield_from_flags({}, {}), s});
    EXPECT_EQ(one.yield, s.yield);
    EXPECT_EQ(one.ci_low, s.ci_low);
    EXPECT_EQ(one.ci_high, s.ci_high);

    // All-unweighted stages: pooled Wilson, identical to concatenated
    // flags.
    const auto u1 = yield::weighted_yield_from_flags({true, false, true}, {});
    const auto u2 = yield::weighted_yield_from_flags({true, true}, {});
    const auto pooled = yield::combine_stage_estimates({u1, u2});
    const auto direct = yield::weighted_yield_from_flags(
        {true, false, true, true, true}, {});
    EXPECT_FALSE(pooled.weighted);
    EXPECT_EQ(pooled.yield, direct.yield);
    EXPECT_EQ(pooled.ci_low, direct.ci_low);
    EXPECT_EQ(pooled.ci_high, direct.ci_high);
    EXPECT_EQ(pooled.ess, direct.ess);
}

TEST(WeightedYield, RejectsBadInput) {
    EXPECT_THROW((void)yield::weighted_yield_from_flags({true}, {0.0, 0.0}),
                 InvalidInputError);
    EXPECT_THROW((void)yield::weighted_yield_from_flags(
                     {true}, {std::numeric_limits<double>::quiet_NaN()}),
                 InvalidInputError);
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("g", 0.0)};
    EXPECT_THROW(
        (void)yield::estimate_weighted_yield({{1.0, 0.0, 7.0}}, specs),
        InvalidInputError);
}

TEST(WeightedYield, NanPerformanceFailsTheSample) {
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("g", 0.0)};
    constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();
    const yield::WeightedYieldEstimate e =
        yield::estimate_weighted_yield({{1.0, 0.0}, {nan_v, 0.0}}, specs);
    EXPECT_EQ(e.passes, 1u);
    EXPECT_EQ(e.samples, 2u);
}

// -------------------------------------------------------------- shift fit

TEST(ShiftFit, RecoversFailureCenterOfGravity) {
    // One spec over column 0, dimension 2: failures sit around u = (2, -1).
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 0.0)};
    std::vector<std::vector<double>> rows;
    // Passing samples scattered near the origin (u should not matter).
    rows.push_back({1.0, 0.0, 0.3, 0.2});
    rows.push_back({2.0, 0.0, -0.4, 0.1});
    // Failing samples.
    rows.push_back({-1.0, 0.0, 1.8, -0.9});
    rows.push_back({-2.0, 0.0, 2.2, -1.1});
    const yield::ShiftFit fit = yield::fit_shift(rows, specs, 2);
    ASSERT_EQ(fit.shift.mu.size(), 2u);
    EXPECT_NEAR(fit.shift.mu[0], 2.0, 1e-12);
    EXPECT_NEAR(fit.shift.mu[1], -1.0, 1e-12);
    EXPECT_EQ(fit.pilot_failures, 2u);
    EXPECT_EQ(fit.spec_failures[0], 2u);
}

TEST(ShiftFit, PerSpecCentersAreClampedAndAlwaysWellDefined) {
    // Regression (two bugs): per-spec components used to escape the
    // max_norm clamp (only the combined shift was clamped - but each
    // component is a proposal mean in the defensive mixture), and specs
    // that never failed left *empty* mu vectors callers could not index.
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("a", 0.0),
                                         mc::Spec::at_most("b", 10.0),
                                         mc::Spec::at_least("c", -1e9)};
    // Row arity: 3 specs + 1 log weight + 2 dims = 6.
    std::vector<std::vector<double>> rows;
    rows.push_back({-1.0, 0.0, 0.0, 0.0, 4.0, 0.0}); // fails spec 0, u = (4, 0)
    rows.push_back({1.0, 20.0, 0.0, 0.0, 0.0, 4.0}); // fails spec 1, u = (0, 4)
    rows.push_back({1.0, 0.0, 0.0, 0.0, 0.1, -0.1}); // passes all
    yield::ShiftFitConfig config;
    config.max_norm = 2.0;
    const yield::ShiftFit fit = yield::fit_shift(rows, specs, 2, config);
    ASSERT_EQ(fit.per_spec.size(), 3u);
    // Each per-spec center is clamped to the norm budget on its own.
    EXPECT_NEAR(fit.per_spec[0].mu[0], 2.0, 1e-12);
    EXPECT_NEAR(fit.per_spec[0].norm(), 2.0, 1e-12);
    EXPECT_NEAR(fit.per_spec[1].mu[1], 2.0, 1e-12);
    // The never-failing spec has a well-defined all-zero mu of full size.
    ASSERT_EQ(fit.per_spec[2].mu.size(), 2u);
    EXPECT_EQ(fit.per_spec[2].mu[0], 0.0);
    EXPECT_EQ(fit.per_spec[2].mu[1], 0.0);
    EXPECT_FALSE(fit.per_spec[2].active());
    // Combined shift averages the *clamped* centers: (1, 1), inside the
    // clamp.
    EXPECT_NEAR(fit.shift.mu[0], 1.0, 1e-12);
    EXPECT_NEAR(fit.shift.mu[1], 1.0, 1e-12);
    EXPECT_LE(fit.shift.norm(), 2.0 + 1e-12);
    // Defensive mixture: nominal + one component per *failing* spec.
    ASSERT_EQ(fit.mixture.components.size(), 3u);
    EXPECT_TRUE(fit.mixture.components[0].mu.empty()); // nominal
    EXPECT_NEAR(fit.mixture.components[0].weight, 0.1, 1e-12);
    EXPECT_NEAR(fit.mixture.components[1].mu[0], 2.0, 1e-12);
    EXPECT_NEAR(fit.mixture.components[1].weight, 0.45, 1e-12);
    EXPECT_NEAR(fit.mixture.components[2].mu[1], 2.0, 1e-12);
    EXPECT_NEAR(fit.mixture.components[2].weight, 0.45, 1e-12);
}

TEST(ShiftFit, RefitIsImportanceWeighted) {
    // Two failing records for one spec with log weights log(3) and log(1):
    // the CE center of gravity is the weight-3 record's pull, (3*1 + 1*5)/4
    // = 2 - not the unweighted midpoint 3.
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 0.0)};
    std::vector<std::vector<double>> rows;
    rows.push_back({-1.0, std::log(3.0), 1.0});
    rows.push_back({-1.0, 0.0, 5.0});
    rows.push_back({1.0, std::log(9.0), -4.0}); // passes: ignored entirely
    const yield::ShiftFit unweighted = yield::fit_shift(rows, specs, 1);
    const yield::ShiftFit weighted = yield::refit_shift(rows, specs, 1);
    EXPECT_NEAR(unweighted.shift.mu[0], 3.0, 1e-12);
    EXPECT_NEAR(weighted.shift.mu[0], 2.0, 1e-12);
    EXPECT_EQ(weighted.pilot_failures, 2u);
    // Non-finite log weights are rejected on the weighted path.
    std::vector<std::vector<double>> bad = {
        {-1.0, std::numeric_limits<double>::quiet_NaN(), 1.0}};
    EXPECT_THROW((void)yield::refit_shift(bad, specs, 1), InvalidInputError);
}

TEST(ShiftFit, RejectsBadDefensiveWeight) {
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 0.0)};
    yield::ShiftFitConfig config;
    config.defensive_weight = 1.0;
    EXPECT_THROW((void)yield::fit_shift({}, specs, 1, config),
                 InvalidInputError);
    config.defensive_weight = -0.1;
    EXPECT_THROW((void)yield::fit_shift({}, specs, 1, config),
                 InvalidInputError);
}

TEST(ShiftFit, NoFailuresKeepsZeroShift) {
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 0.0)};
    const yield::ShiftFit fit =
        yield::fit_shift({{1.0, 0.0, 0.5}, {2.0, 0.0, -0.5}}, specs, 1);
    EXPECT_TRUE(fit.shift.mu.empty());
    EXPECT_FALSE(fit.shift.active());
    EXPECT_EQ(fit.pilot_failures, 0u);
}

// ------------------------------------------------------ sequential driver

TEST(SequentialYield, ZeroShiftBitIdenticalToPlainMonteCarlo) {
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 45.0)};
    const std::size_t n = 96;

    // Reference: the plain chunked MC runner + the plain estimator.
    eval::Engine plain_engine = make_engine();
    Rng plain_rng(31);
    mc::McConfig cfg;
    cfg.samples = n;
    const mc::McResult plain = mc::run_monte_carlo(
        plain_engine, cfg, plain_rng,
        mc::ChunkSampleFn([](std::span<const std::size_t>, std::span<Rng> rngs) {
            std::vector<std::vector<double>> rows;
            for (Rng& rng : rngs) rows.push_back({50.0 + 2.0 * rng.gauss()});
            return rows;
        }));
    const mc::YieldEstimate plain_yield = mc::estimate_yield(plain.rows, specs);

    // The sequential driver with the pilot disabled (zero shift), one chunk.
    eval::Engine engine = make_engine();
    yield::SequentialConfig config;
    config.pilot_samples = 0;
    config.chunk_samples = n;
    config.max_samples = n;
    config.min_samples = n;
    yield::SequentialYieldRunner runner(engine, config, specs,
                                        synthetic_factory(50.0, 2.0), 1, Rng(31));
    const yield::SequentialYieldResult result = runner.run();

    EXPECT_FALSE(result.estimate.weighted);
    EXPECT_EQ(result.samples_used, n);
    EXPECT_EQ(result.estimate.samples, plain_yield.samples);
    EXPECT_EQ(result.estimate.passes, plain_yield.passes);
    EXPECT_EQ(result.estimate.yield, plain_yield.yield);
    EXPECT_EQ(result.estimate.ci_low, plain_yield.ci_low);
    EXPECT_EQ(result.estimate.ci_high, plain_yield.ci_high);
}

TEST(SequentialYield, EarlyStopDeterministicAcrossInflightWindows) {
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 48.0)};
    auto run_with_inflight = [&](std::size_t inflight) {
        eval::Engine engine = make_engine();
        yield::SequentialConfig config;
        config.pilot_samples = 64;
        config.pilot_scale = 1.5;
        config.chunk_samples = 64;
        config.max_samples = 8192;
        config.min_samples = 128;
        config.target_half_width = 0.04;
        config.inflight = inflight;
        yield::SequentialYieldRunner runner(
            engine, config, specs, synthetic_factory(50.0, 2.0), 1, Rng(77));
        return runner.run();
    };
    const auto a = run_with_inflight(1);
    const auto b = run_with_inflight(4);

    EXPECT_TRUE(a.reached_target);
    EXPECT_LT(a.samples_used, 8192u);
    // Identical retired prefix regardless of the streaming window.
    EXPECT_EQ(a.samples_used, b.samples_used);
    EXPECT_EQ(a.estimate.yield, b.estimate.yield);
    EXPECT_EQ(a.estimate.ci_low, b.estimate.ci_low);
    EXPECT_EQ(a.estimate.ci_high, b.estimate.ci_high);
    EXPECT_EQ(a.trajectory.size(), b.trajectory.size());
    // The wider window may have drained overshoot, never folded it.
    EXPECT_EQ(a.discarded_samples, 0u);
}

TEST(SequentialYield, ImportanceSamplingBeatsPlainMcOnRareSpec) {
    // Rare failure: value = u fails when u > 3 (p = 1.35e-3). Both drivers
    // run to the same CI target; IS must get there in far fewer samples.
    const std::vector<mc::Spec> specs = {mc::Spec::at_most("v", 3.0)};
    const double target = 5e-4;
    const double p_true = 1.349898e-3;

    yield::SequentialConfig config;
    config.chunk_samples = 128;
    config.max_samples = 60000;
    config.min_samples = 256;
    config.target_half_width = target;

    eval::Engine plain_engine = make_engine();
    yield::SequentialConfig plain_config = config;
    plain_config.pilot_samples = 0; // zero shift: plain sequential MC
    yield::SequentialYieldRunner plain_runner(
        plain_engine, plain_config, specs, synthetic_factory(0.0, 1.0), 1, Rng(5));
    const auto plain = plain_runner.run();

    eval::Engine is_engine = make_engine();
    yield::SequentialConfig is_config = config;
    is_config.pilot_samples = 256;
    is_config.pilot_scale = 2.5;
    yield::SequentialYieldRunner is_runner(
        is_engine, is_config, specs, synthetic_factory(0.0, 1.0), 1, Rng(5));
    const auto is = is_runner.run();

    ASSERT_TRUE(plain.reached_target);
    ASSERT_TRUE(is.reached_target);
    EXPECT_TRUE(is.estimate.weighted);
    EXPECT_GT(is.shift.norm(), 1.0); // the pilot found the failure region
    // >= 3x sample reduction (the bench gates the same on the OTA).
    EXPECT_LE(3 * (is.samples_used + is.pilot_samples), plain.samples_used);
    // And the estimate is actually right.
    EXPECT_NEAR(1.0 - is.estimate.yield, p_true, 3.0 * target);
    EXPECT_GT(is.estimate.ess, 10.0);
}

TEST(SequentialYield, AdaptiveAllocatorFocusesBudgetOnWidestCi) {
    // Point 0: p ~ 0.5 (high per-sample variance). Point 1: p ~ 0.98.
    // Under one shared budget the allocator must spend more on point 0.
    std::vector<yield::YieldPoint> points(2);
    points[0].specs = {mc::Spec::at_least("v", 50.0)};
    points[0].factory = synthetic_factory(50.0, 2.0);
    points[0].dimension = 1;
    points[1].specs = {mc::Spec::at_least("v", 45.9)};
    points[1].factory = synthetic_factory(50.0, 2.0);
    points[1].dimension = 1;

    yield::AdaptiveYieldConfig config;
    config.sequential.pilot_samples = 64;
    config.sequential.chunk_samples = 64;
    config.sequential.max_samples = 100000;
    config.sequential.min_samples = 64;
    config.sequential.target_half_width = 1e-4; // unreachable in budget
    config.total_samples = 4096;

    eval::Engine engine = make_engine();
    const auto results = yield::run_adaptive_yield(engine, config, points, Rng(3));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].samples_used, results[1].samples_used);
    // total_samples caps the useful samples (pilots + folded chunks);
    // drained overshoot is refunded.
    std::size_t charged = 0;
    for (const auto& r : results) charged += r.samples_used + r.pilot_samples;
    EXPECT_LE(charged, config.total_samples);
    // Both points got at least one chunk despite the skew.
    EXPECT_GT(results[1].samples_used, 0u);
}

TEST(SequentialYield, AdaptiveAllocatorDeterministicAndNeverFoldsPastDone) {
    // The multi-point contract: fully deterministic for a fixed
    // configuration (rerun equality), stop decisions never fold a window's
    // overshoot (regression: retire_chunk used to be called unconditionally
    // past done()), and refunded overshoot keeps the useful-sample budget
    // honest. Cross-window invariance is deliberately NOT claimed - the
    // window is the allocation granularity (see run_adaptive_yield's doc).
    auto run_once = [](std::size_t inflight) {
        std::vector<yield::YieldPoint> points(2);
        for (std::size_t i = 0; i < points.size(); ++i) {
            points[i].specs = {mc::Spec::at_least("v", 46.0 + 2.0 * double(i))};
            points[i].factory = synthetic_factory(50.0, 2.0);
            points[i].dimension = 1;
        }
        yield::AdaptiveYieldConfig config;
        config.sequential.pilot_samples = 32;
        config.sequential.chunk_samples = 32;
        config.sequential.max_samples = 8192;
        config.sequential.min_samples = 64;
        config.sequential.target_half_width = 0.03;
        config.sequential.inflight = inflight;
        config.total_samples = 6144;
        eval::Engine engine = make_engine();
        return yield::run_adaptive_yield(engine, config, points, Rng(41));
    };
    const auto a = run_once(4);
    const auto b = run_once(4);
    ASSERT_EQ(a.size(), b.size());
    std::size_t charged = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].samples_used, b[i].samples_used);
        EXPECT_EQ(a[i].estimate.yield, b[i].estimate.yield);
        EXPECT_EQ(a[i].estimate.ci_low, b[i].estimate.ci_low);
        EXPECT_EQ(a[i].estimate.ci_high, b[i].estimate.ci_high);
        EXPECT_TRUE(a[i].reached_target);
        // No window chunk may be folded past the stop: the folded samples
        // stay a multiple of the chunk size reached at or before done.
        EXPECT_EQ(a[i].samples_used % 32, 0u);
        charged += a[i].samples_used + a[i].pilot_samples;
    }
    EXPECT_LE(charged, 6144u);
}

TEST(SequentialYield, MixtureRecoversEssWhereSingleShiftCollapses) {
    // Bimodal two-spec problem: failures live in the disjoint regions
    // u0 > 3 and u1 > 3. The single combined shift points *between* the
    // modes (its fail-side ESS collapses on weight variance); the defensive
    // mixture covers each mode with its own component plus a nominal
    // component bounding the weights. Same seed, same budget, no early
    // stop: the mixture must deliver more effective failure observations
    // and a tighter interval, and its estimate must be right.
    const yield::Scenario bimodal = yield::make_scenario("synthetic_bimodal");
    const double p_true = 1.0 - (1.0 - 1.349898e-3) * (1.0 - 1.349898e-3);
    auto run_mode = [&](bool mixture) {
        eval::Engine engine = make_engine();
        yield::SequentialConfig config;
        config.pilot_samples = 512;
        config.pilot_scale = 2.5;
        config.chunk_samples = 256;
        config.max_samples = 4096;
        config.min_samples = 512;
        config.mixture_proposal = mixture;
        yield::SequentialYieldRunner runner(engine, config, bimodal.specs,
                                            bimodal.factory,
                                            bimodal.dimension, Rng(57));
        return runner.run();
    };
    const auto single = run_mode(false);
    const auto mixture = run_mode(true);

    EXPECT_TRUE(single.estimate.weighted);
    EXPECT_TRUE(mixture.estimate.weighted);
    EXPECT_EQ(single.samples_used, mixture.samples_used);
    ASSERT_EQ(mixture.proposal.components.size(), 3u); // nominal + 2 modes
    // ESS recovery and the tighter interval.
    EXPECT_GT(mixture.estimate.ess, 2.0 * single.estimate.ess);
    EXPECT_LT(mixture.estimate.half_width(), single.estimate.half_width());
    // And the mixture estimate is actually right (CI covers the truth).
    EXPECT_LE(mixture.estimate.ci_low, 1.0 - p_true + 1e-12);
    EXPECT_GE(mixture.estimate.ci_high, 1.0 - p_true - 1e-12);
    EXPECT_NEAR(1.0 - mixture.estimate.yield, p_true, 1e-3);
}

TEST(SequentialYield, CeRefinementDeterministicAcrossInflightWindows) {
    // The refinement extension of the window-invariance contract: a refit
    // decision depends only on the retired prefix, in-flight chunks drawn
    // from the replaced proposal are drained (never folded), and the RNG
    // rewinds to the retired prefix - so the whole multi-stage run is
    // bit-identical for any inflight window.
    const std::vector<mc::Spec> specs = {mc::Spec::at_most("v", 3.0)};
    auto run_with_inflight = [&](std::size_t inflight) {
        eval::Engine engine = make_engine();
        yield::SequentialConfig config;
        config.pilot_samples = 256;
        config.pilot_scale = 2.5;
        config.chunk_samples = 64;
        config.max_samples = 4096;
        config.min_samples = 256;
        config.target_half_width = 5e-4;
        config.inflight = inflight;
        config.refine_after_chunks = 2; // refit before the min_samples floor
        config.max_refits = 2;
        config.refit_min_failures = 4;
        yield::SequentialYieldRunner runner(
            engine, config, specs, synthetic_factory(0.0, 1.0), 1, Rng(21));
        return runner.run();
    };
    const auto a = run_with_inflight(1);
    const auto b = run_with_inflight(4);

    EXPECT_GE(a.refinements, 1u); // the CE path actually ran
    EXPECT_EQ(a.refinements, b.refinements);
    EXPECT_EQ(a.samples_used, b.samples_used);
    EXPECT_EQ(a.estimate.yield, b.estimate.yield);
    EXPECT_EQ(a.estimate.ci_low, b.estimate.ci_low);
    EXPECT_EQ(a.estimate.ci_high, b.estimate.ci_high);
    EXPECT_EQ(a.estimate.ess, b.estimate.ess);
    ASSERT_EQ(a.stage_estimates.size(), b.stage_estimates.size());
    EXPECT_EQ(a.stage_estimates.size(), a.refinements + 1);
    for (std::size_t s = 0; s < a.stage_estimates.size(); ++s) {
        EXPECT_EQ(a.stage_estimates[s].samples, b.stage_estimates[s].samples);
        EXPECT_EQ(a.stage_estimates[s].yield, b.stage_estimates[s].yield);
    }
    EXPECT_EQ(a.trajectory.size(), b.trajectory.size());
    // The blocking window drains nothing at a refit; wider windows may.
    EXPECT_EQ(a.discarded_samples, 0u);
    // And the refined estimate is still correct.
    EXPECT_NEAR(1.0 - a.estimate.yield, 1.349898e-3, 3.0 * 5e-4);
}

TEST(SequentialYield, StarvedBudgetSkipsPilotAndFlagsIt) {
    // Regression: when total_samples cannot cover every pilot, the late
    // points used to fall back to plain MC *silently*. Contract: the
    // starved points are flagged via SequentialYieldResult::pilot_skipped.
    std::vector<yield::YieldPoint> points(3);
    for (auto& p : points) {
        p.specs = {mc::Spec::at_least("v", 45.0)};
        p.factory = synthetic_factory(50.0, 2.0);
        p.dimension = 1;
    }
    yield::AdaptiveYieldConfig config;
    config.sequential.pilot_samples = 32;
    config.sequential.chunk_samples = 32;
    config.sequential.max_samples = 256;
    config.sequential.min_samples = 32;
    config.total_samples = 64; // two pilots fit, the third cannot
    eval::Engine engine = make_engine();
    // The starvation must also be *loud*: capture the structured log and
    // assert the warning fires exactly once, for the third point.
    std::vector<std::string> log_lines;
    log::set_sink(log::json_lines_sink(log_lines));
    const auto results = yield::run_adaptive_yield(engine, config, points, Rng(8));
    log::set_sink(nullptr);
    ASSERT_EQ(log_lines.size(), 1u) << "expected exactly one warning";
    EXPECT_NE(log_lines[0].find("\"level\":\"warn\""), std::string::npos)
        << log_lines[0];
    EXPECT_NE(log_lines[0].find("pilot_skipped"), std::string::npos)
        << log_lines[0];
    EXPECT_NE(log_lines[0].find("point 2"), std::string::npos) << log_lines[0];
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].pilot_skipped);
    EXPECT_EQ(results[0].pilot_samples, 32u);
    EXPECT_FALSE(results[1].pilot_skipped);
    EXPECT_TRUE(results[2].pilot_skipped);
    EXPECT_EQ(results[2].pilot_samples, 0u);
    // The starved point still reports the vacuous interval, not [0, 0].
    EXPECT_EQ(results[2].samples_used, 0u);
    EXPECT_EQ(results[2].estimate.ci_low, 0.0);
    EXPECT_EQ(results[2].estimate.ci_high, 1.0);
}

TEST(SequentialYield, BudgetStarvedPointReportsVacuousInterval) {
    // Regression: a point whose budget ran out before its first chunk used
    // to report the default point interval [0, 0] - certain 0 % yield on no
    // evidence. Contract: the vacuous interval [0, 1] and 0 samples.
    std::vector<yield::YieldPoint> points(2);
    for (auto& p : points) {
        p.specs = {mc::Spec::at_least("v", 45.0)};
        p.factory = synthetic_factory(50.0, 2.0);
        p.dimension = 1;
    }
    yield::AdaptiveYieldConfig config;
    config.sequential.pilot_samples = 32;
    config.sequential.chunk_samples = 32;
    config.sequential.max_samples = 256;
    config.sequential.min_samples = 32;
    config.total_samples = 64; // both pilots fit, no chunk ever does
    eval::Engine engine = make_engine();
    const auto results = yield::run_adaptive_yield(engine, config, points, Rng(8));
    ASSERT_EQ(results.size(), 2u);
    for (const auto& r : results) {
        EXPECT_EQ(r.samples_used, 0u);
        EXPECT_EQ(r.estimate.samples, 0u);
        EXPECT_EQ(r.estimate.ci_low, 0.0);
        EXPECT_EQ(r.estimate.ci_high, 1.0); // never a point interval
    }
}

TEST(SequentialYield, StreamingDriverOnParallelEngine) {
    // Concurrency smoke for the TSan leg: several points, chunks in flight
    // on the shared pool, adaptive retirement.
    std::vector<yield::YieldPoint> points(3);
    for (std::size_t i = 0; i < points.size(); ++i) {
        points[i].specs = {mc::Spec::at_least("v", 44.0 + double(i))};
        points[i].factory = synthetic_factory(50.0, 2.0);
        points[i].dimension = 1;
    }
    yield::AdaptiveYieldConfig config;
    config.sequential.pilot_samples = 32;
    config.sequential.chunk_samples = 32;
    config.sequential.max_samples = 512;
    config.sequential.min_samples = 64;
    config.sequential.target_half_width = 0.02;
    config.sequential.inflight = 3;

    eval::Engine engine = make_engine(true);
    const auto results = yield::run_adaptive_yield(engine, config, points, Rng(9));
    ASSERT_EQ(results.size(), 3u);
    for (const auto& r : results) {
        EXPECT_GT(r.samples_used, 0u);
        EXPECT_GE(r.estimate.yield, 0.0);
        EXPECT_LE(r.estimate.yield, 1.0);
    }
}

TEST(SequentialYield, OtaKernelZeroShiftBitIdenticalToOtaMonteCarlo) {
    // The acceptance pin on the real testbench: the OTA yield kernel at zero
    // shift must reproduce run_ota_monte_carlo's rows bit-exactly, and the
    // estimator must collapse to mc::estimate_yield.
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing; // nominal mid-range sizing
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    const std::size_t n = 48;

    eval::Engine plain_engine = make_engine();
    Rng plain_rng(2026);
    const mc::McResult plain = core::run_ota_monte_carlo(
        plain_engine, evaluator, sizing, sampler, n, plain_rng);
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("gain_db", 40.0),
                                         mc::Spec::at_least("pm_deg", 50.0)};
    const mc::YieldEstimate plain_yield = mc::estimate_yield(plain.rows, specs);

    eval::Engine engine = make_engine();
    yield::SequentialConfig config;
    config.pilot_samples = 0;
    config.chunk_samples = n;
    config.max_samples = n;
    config.min_samples = n;
    yield::SequentialYieldRunner runner(
        engine, config, specs,
        core::ota_yield_kernel_factory(evaluator, sizing, sampler),
        core::ota_yield_dimension(evaluator, sizing), Rng(2026));
    const yield::SequentialYieldResult result = runner.run();

    EXPECT_FALSE(result.estimate.weighted);
    EXPECT_EQ(result.estimate.samples, plain_yield.samples);
    EXPECT_EQ(result.estimate.passes, plain_yield.passes);
    EXPECT_EQ(result.estimate.yield, plain_yield.yield);
    EXPECT_EQ(result.estimate.ci_low, plain_yield.ci_low);
    EXPECT_EQ(result.estimate.ci_high, plain_yield.ci_high);
}

TEST(SequentialYield, OtaImportanceSamplingMatchesPlainEstimate) {
    // Cross-check on the real testbench at a moderate spec: the shifted
    // estimator must agree with a plain MC reference within joint CIs.
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());

    eval::Engine plain_engine = make_engine();
    Rng plain_rng(7);
    const mc::McResult plain = core::run_ota_monte_carlo(
        plain_engine, evaluator, sizing, sampler, 600, plain_rng);
    // Put the spec in the lower tail of the sampled gain population.
    const auto gain = plain.column(0);
    const mc::Summary s = mc::summarize(gain);
    // Rows carry {gain_db, pm_deg}; the pm spec is an always-pass
    // placeholder so the arity matches on both estimators.
    const std::vector<mc::Spec> specs = {
        mc::Spec::at_least("gain_db", s.mean - 2.0 * s.stddev),
        mc::Spec::at_least("pm_deg", -1e9)};
    const mc::YieldEstimate reference = mc::estimate_yield(plain.rows, specs);

    eval::Engine engine = make_engine();
    yield::SequentialConfig config;
    config.pilot_samples = 96;
    config.pilot_scale = 2.0;
    config.chunk_samples = 96;
    config.max_samples = 384;
    config.min_samples = 96;
    yield::SequentialYieldRunner runner(
        engine, config, specs,
        core::ota_yield_kernel_factory(evaluator, sizing, sampler),
        core::ota_yield_dimension(evaluator, sizing), Rng(13));
    const auto result = runner.run();

    EXPECT_TRUE(result.estimate.weighted); // the pilot found failures
    EXPECT_GT(result.shift.norm(), 0.0);
    // CI overlap between the two independent estimates.
    EXPECT_LE(result.estimate.ci_low, reference.ci_high);
    EXPECT_GE(result.estimate.ci_high, reference.ci_low);
}

TEST(SequentialYield, NoEarlyStopOnZeroFailureEvidenceUnderActiveWeights) {
    // Regression: a weighted run that observes no failures reports the
    // clean-sweep Wilson fallback CI; if the proposal is misaimed (it
    // undersamples the failure region), stopping on that CI would certify
    // a bound the sampling never supported. The runner must keep sampling
    // until it sees failure evidence (ess > 0) or hits the cap.
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 0.0)};
    // Kernel with active weights but no failures ever observed.
    const yield::KernelFactory factory =
        [](const process::ProposalMixture&, bool) -> mc::ChunkSampleFn {
        return [](std::span<const std::size_t>, std::span<Rng> rngs) {
            std::vector<std::vector<double>> rows;
            for (Rng& rng : rngs) {
                (void)rng.gauss();
                rows.push_back({1.0, 0.1}); // always passes, log weight 0.1
            }
            return rows;
        };
    };
    eval::Engine engine = make_engine();
    yield::SequentialConfig config;
    config.pilot_samples = 0;
    config.chunk_samples = 64;
    config.max_samples = 512;
    config.min_samples = 64;
    config.target_half_width = 0.05; // Wilson fallback would meet this early
    yield::SequentialYieldRunner runner(engine, config, specs, factory, 1,
                                        Rng(19));
    const auto result = runner.run();
    EXPECT_EQ(result.samples_used, 512u); // ran to the cap
    EXPECT_FALSE(result.reached_target);
    EXPECT_EQ(result.estimate.ess, 0.0);
    EXPECT_EQ(result.estimate.ci_high, 1.0);
    EXPECT_LT(result.estimate.ci_low, 1.0);
}

TEST(SequentialYield, RunnerValidatesConfig) {
    eval::Engine engine = make_engine();
    const std::vector<mc::Spec> specs = {mc::Spec::at_least("v", 0.0)};
    yield::SequentialConfig bad;
    bad.chunk_samples = 0;
    EXPECT_THROW(yield::SequentialYieldRunner(engine, bad, specs,
                                              synthetic_factory(0.0, 1.0), 1,
                                              Rng(1)),
                 InvalidInputError);
    yield::SequentialConfig ok;
    EXPECT_THROW(yield::SequentialYieldRunner(engine, ok, {},
                                              synthetic_factory(0.0, 1.0), 1,
                                              Rng(1)),
                 InvalidInputError);
    // Regression: min_samples > max_samples used to be accepted silently,
    // making the early stop unreachable and burning the full cap.
    yield::SequentialConfig inverted;
    inverted.min_samples = 512;
    inverted.max_samples = 256;
    EXPECT_THROW(yield::SequentialYieldRunner(engine, inverted, specs,
                                              synthetic_factory(0.0, 1.0), 1,
                                              Rng(1)),
                 InvalidInputError);
    // Defensive weight outside [0, 1) is rejected up front, not at fit
    // time deep into the run.
    yield::SequentialConfig bad_dw;
    bad_dw.shift_fit.defensive_weight = 1.0;
    EXPECT_THROW(yield::SequentialYieldRunner(engine, bad_dw, specs,
                                              synthetic_factory(0.0, 1.0), 1,
                                              Rng(1)),
                 InvalidInputError);
}

} // namespace
