// Tests for the core flow components: Pareto extraction from archives, MC
// enrichment, artefact round-trips, the behavioural model's yield-targeted
// sizing (paper Table 3 logic) and model-vs-transistor verification.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/artifacts.hpp"
#include "core/behav_model.hpp"
#include "core/flow.hpp"
#include "core/ota_mc.hpp"
#include "core/verify.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::core;

// Synthetic front shaped like the paper's Table 2 region.
std::vector<FrontPointData> synthetic_front() {
    std::vector<FrontPointData> front;
    const std::size_t n = 15;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / (n - 1);
        FrontPointData p;
        p.design_id = i + 1;
        p.gain_db = 49.5 + 2.5 * t;             // 49.5 -> 52.0 dB
        p.pm_deg = 77.0 - 4.5 * t;              // 77 -> 72.5 deg
        p.dgain_pct = 0.52 - 0.10 * t;          // paper Table 2-like
        p.dpm_pct = 1.50 + 0.20 * t;
        p.dgain_halfrange_pct = p.dgain_pct * 1.2;
        p.dpm_halfrange_pct = p.dpm_pct * 1.2;
        p.f3db = 4e3 + 2e3 * t;
        p.gbw = 3e6 + 2e6 * t;
        circuits::OtaSizing s;
        s.w1 = 15e-6 + 40e-6 * t;
        s.l1 = 3.0e-6 - 1.5e-6 * t;
        p.sizing = s;
        front.push_back(p);
    }
    return front;
}

TEST(BehaviouralModel, DeltaInterpolationMatchesTable) {
    const BehaviouralModel model(synthetic_front());
    // At the low-gain end, Δgain ~ 0.52 %.
    EXPECT_NEAR(model.gain_delta_pct(49.5), 0.52, 0.02);
    // Midway: linear profile gives ~0.47.
    EXPECT_NEAR(model.gain_delta_pct(50.75), 0.47, 0.03);
    // PM delta at 77 deg is the front's low-t end: ~1.50.
    EXPECT_NEAR(model.pm_delta_pct(77.0), 1.50, 0.03);
}

TEST(BehaviouralModel, YieldTargetingInflatesRequirement) {
    // Paper Table 3: required gain 50 dB with Δ ~ 0.5 % -> target ~ 50.26 dB.
    const BehaviouralModel model(synthetic_front());
    const SizingResult r = model.size_for_spec(50.0, 74.0);
    EXPECT_GT(r.target_gain_db, 50.0);
    EXPECT_LT(r.target_gain_db, 50.6);
    EXPECT_NEAR(r.target_gain_db,
                50.0 * (1.0 + model.gain_delta_pct(50.0) / 100.0), 1e-9);
    EXPECT_GT(r.target_pm_deg, 74.0);
    EXPECT_NEAR(r.target_pm_deg, 74.0 * (1.0 + model.pm_delta_pct(74.0) / 100.0),
                1e-9);
}

TEST(BehaviouralModel, FeasibleSpecYieldsDominatingPoint) {
    const BehaviouralModel model(synthetic_front());
    const SizingResult r = model.size_for_spec(50.0, 73.5);
    EXPECT_TRUE(r.feasible);
    EXPECT_GE(r.predicted_gain_db, r.target_gain_db - 1e-6);
    EXPECT_GE(r.predicted_pm_deg, r.target_pm_deg - 1e-6);
    // Sizing must lie inside the front's parameter range.
    EXPECT_GE(r.sizing.w1, 15e-6 - 1e-9);
    EXPECT_LE(r.sizing.w1, 55e-6 + 1e-9);
}

TEST(BehaviouralModel, InfeasibleSpecFlagged) {
    const BehaviouralModel model(synthetic_front());
    // Nothing on the synthetic front has gain 52 AND pm 77.
    const SizingResult r = model.size_for_spec(52.0, 77.0);
    EXPECT_FALSE(r.feasible);
}

TEST(BehaviouralModel, MacromodelSpecUsesFrontData) {
    const BehaviouralModel model(synthetic_front());
    const SizingResult r = model.size_for_spec(50.0, 74.0);
    const auto spec = model.macromodel_spec(r);
    EXPECT_DOUBLE_EQ(spec.gain_db, r.predicted_gain_db);
    // rout recreates the characterised pole (4-6 kHz on this front)
    // against the 10 pF testbench load: 1/(2 pi f3db CL).
    const double f_from_rout = 1.0 / (2.0 * 3.14159265358979 * spec.rout * 10e-12);
    EXPECT_GT(f_from_rout, 3e3);
    EXPECT_LT(f_from_rout, 7e3);
    EXPECT_GE(spec.f3db, 1e8); // intrinsic pole out of band
}

TEST(BehaviouralModel, CoverageAccessors) {
    const BehaviouralModel model(synthetic_front());
    EXPECT_NEAR(model.gain_min(), 49.5, 1e-9);
    EXPECT_NEAR(model.gain_max(), 52.0, 1e-9);
    EXPECT_NEAR(model.pm_min(), 72.5, 1e-9);
    EXPECT_NEAR(model.pm_max(), 77.0, 1e-9);
}

TEST(Artifacts, WriteAndReadRoundTrip) {
    const auto front = synthetic_front();
    const auto dir =
        (std::filesystem::temp_directory_path() / "ypm_artifacts_test").string();
    const ModelArtifacts art = write_artifacts(front, dir);

    EXPECT_TRUE(std::filesystem::exists(art.gain_delta_tbl));
    EXPECT_TRUE(std::filesystem::exists(art.pm_delta_tbl));
    EXPECT_EQ(art.param_tbls.size(), 8u);
    EXPECT_TRUE(std::filesystem::exists(art.va_module));
    EXPECT_TRUE(std::filesystem::exists(art.front_csv));

    const auto back = read_front_from_artifacts(art);
    ASSERT_EQ(back.size(), front.size());
    for (std::size_t i = 0; i < front.size(); ++i) {
        EXPECT_DOUBLE_EQ(back[i].gain_db, front[i].gain_db);
        EXPECT_DOUBLE_EQ(back[i].pm_deg, front[i].pm_deg);
        EXPECT_DOUBLE_EQ(back[i].dgain_pct, front[i].dgain_pct);
        EXPECT_DOUBLE_EQ(back[i].sizing.w1, front[i].sizing.w1);
        EXPECT_DOUBLE_EQ(back[i].f3db, front[i].f3db);
    }

    // A model built from the reloaded artefacts answers identically.
    const BehaviouralModel direct(front);
    const BehaviouralModel reloaded = BehaviouralModel::from_artifacts(art);
    EXPECT_NEAR(direct.gain_delta_pct(50.5), reloaded.gain_delta_pct(50.5), 1e-9);

    std::filesystem::remove_all(dir);
}

TEST(Artifacts, RejectsTinyFront) {
    std::vector<FrontPointData> tiny(2);
    EXPECT_THROW((void)write_artifacts(tiny, "/tmp/ypm_tiny"), InvalidInputError);
}

TEST(OtaMc, VariationInPaperBallpark) {
    const circuits::OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    Rng rng(3);
    const auto mc = run_ota_monte_carlo(ev, circuits::OtaSizing{}, sampler, 80, rng);
    EXPECT_EQ(mc.rows.size(), 80u);
    EXPECT_LT(mc.failed(), 4u);
    const auto gv = mc.column_variation(0);
    const auto pv = mc.column_variation(1);
    // Paper Table 2: Δgain ~ 0.4-0.6 %, Δpm ~ 1.5-1.7 %; our substrate lands
    // in the sub-percent decade with Δpm > Δgain.
    EXPECT_GT(gv.delta_3sigma_pct, 0.05);
    EXPECT_LT(gv.delta_3sigma_pct, 3.0);
    EXPECT_GT(pv.delta_3sigma_pct, gv.delta_3sigma_pct * 0.5);
}

TEST(Flow, ExtractFrontFromArchive) {
    // Hand-built archive with a known 2-point front.
    moo::WbgaResult result;
    auto add = [&](double g, double p) {
        moo::EvaluatedIndividual e;
        e.objectives = {g, p};
        result.archive.push_back(e);
    };
    add(50.0, 80.0); // front
    add(52.0, 75.0); // front
    add(49.0, 79.0); // dominated by (50, 80)
    add(51.0, 74.0); // dominated by (52, 75)
    const auto front = extract_front_indices(result);
    ASSERT_EQ(front.size(), 2u);
    // Sorted by gain.
    EXPECT_EQ(front[0], 0u);
    EXPECT_EQ(front[1], 1u);
}

TEST(Flow, RejectsMalformedYieldSpecs) {
    // The OTA yield kernel's row layout is positional ({gain_db, pm_deg}),
    // so the flow must fail fast - before the expensive MOO stage - on
    // reordered or wrong-arity specs rather than certify wrong yields.
    circuits::OtaConfig ota;
    FlowConfig cfg;
    cfg.ga.population = 4;
    cfg.ga.generations = 1;

    FlowConfig reversed = cfg;
    reversed.yield_specs = {mc::Spec::at_least("pm_deg", 60.0),
                            mc::Spec::at_least("gain_db", 30.0)};
    EXPECT_THROW((void)YieldFlow(ota, reversed).run(), InvalidInputError);

    FlowConfig single = cfg;
    single.yield_specs = {mc::Spec::at_least("gain_db", 30.0)};
    EXPECT_THROW((void)YieldFlow(ota, single).run(), InvalidInputError);

    const std::vector<mc::Spec> good_specs = {
        mc::Spec::at_least("gain_db", 30.0), mc::Spec::at_least("pm_deg", 15.0)};

    // min_samples > max_samples would make the yield stage's early stop
    // silently unreachable; fail before the MOO stage, not inside it.
    FlowConfig inverted = cfg;
    inverted.yield_specs = good_specs;
    inverted.yield_sequential.min_samples = 512;
    inverted.yield_sequential.max_samples = 256;
    EXPECT_THROW((void)YieldFlow(ota, inverted).run(), InvalidInputError);

    // Same for a defensive mixture weight outside [0, 1).
    FlowConfig bad_dw = cfg;
    bad_dw.yield_specs = good_specs;
    bad_dw.yield_sequential.shift_fit.defensive_weight = 1.0;
    EXPECT_THROW((void)YieldFlow(ota, bad_dw).run(), InvalidInputError);

    // And for a yield-estimator name the registry does not know: the yield
    // stage resolves the name only after the MOO stage, so the fail-fast
    // check up front is what keeps a typo from wasting the whole run.
    FlowConfig bad_estimator = cfg;
    bad_estimator.yield_specs = good_specs;
    bad_estimator.yield_estimator = "no_such_estimator";
    EXPECT_THROW((void)YieldFlow(ota, bad_estimator).run(), InvalidInputError);
}

TEST(Artifacts, YieldTableWrittenWithProbeDeltas) {
    const auto front = synthetic_front();
    std::vector<YieldTableRow> yields;
    for (const auto& p : front) {
        YieldTableRow row;
        row.design_id = p.design_id;
        row.probe_yield = 0.75; // exact in binary, so probe_delta is too
        row.yield = 0.5;
        row.ci_low = 0.4375;
        row.ci_high = 0.5625;
        row.ess = 40.0;
        row.samples = 128;
        row.reached_target = true;
        yields.push_back(row);
    }
    const auto dir =
        (std::filesystem::temp_directory_path() / "ypm_yield_artifacts").string();
    const ModelArtifacts art = write_artifacts(front, yields, dir);
    ASSERT_TRUE(std::filesystem::exists(art.yield_csv));
    // Full coverage of the front: the back-annotation spline table rides
    // along.
    ASSERT_TRUE(std::filesystem::exists(art.yield_tbl));
    std::ifstream csv(art.yield_csv);
    std::string header;
    std::getline(csv, header);
    EXPECT_NE(header.find("probe_yield"), std::string::npos);
    EXPECT_NE(header.find("probe_delta"), std::string::npos);
    std::string row;
    std::getline(csv, row);
    // probe_delta = 0.75 - 0.5.
    EXPECT_NE(row.find("0.25"), std::string::npos) << row;

    // Partial coverage keeps the CSV but drops the spline table.
    const ModelArtifacts partial =
        write_artifacts(front, {yields[0]}, dir + "_partial");
    EXPECT_TRUE(std::filesystem::exists(partial.yield_csv));
    EXPECT_TRUE(partial.yield_tbl.empty());

    // Rows must match front points: an unknown design_id is rejected.
    yields[0].design_id = 99;
    EXPECT_THROW((void)write_artifacts(front, yields, dir + "_bad"),
                 InvalidInputError);

    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir + "_partial");
}

TEST(Flow, RejectsMalformedProbeKnobs) {
    // Probe knobs are validated fail-fast in run(), before the MOO stage.
    circuits::OtaConfig ota;
    FlowConfig cfg;
    cfg.ga.population = 4;
    cfg.ga.generations = 2;
    cfg.yield_specs = {mc::Spec::at_least("gain_db", 30.0),
                       mc::Spec::at_least("pm_deg", 15.0)};

    // Probes need specs to probe against.
    FlowConfig no_specs = cfg;
    no_specs.yield_specs.clear();
    no_specs.yield_probe.budget = 32;
    EXPECT_THROW((void)YieldFlow(ota, no_specs).run(), InvalidInputError);

    // An activation at or past the generation count would silently never
    // probe.
    FlowConfig never = cfg;
    never.yield_probe.budget = 32;
    never.yield_probe.activation_generation = 2;
    EXPECT_THROW((void)YieldFlow(ota, never).run(), InvalidInputError);

    FlowConfig bad_target = cfg;
    bad_target.yield_probe.budget = 32;
    bad_target.yield_probe.target_half_width = -0.1;
    EXPECT_THROW((void)YieldFlow(ota, bad_target).run(), InvalidInputError);

    FlowConfig bad_weight = cfg;
    bad_weight.yield_probe.budget = 32;
    bad_weight.yield_probe.yield_weight = 1.5;
    EXPECT_THROW((void)YieldFlow(ota, bad_weight).run(), InvalidInputError);

    // A valid estimator whose pilot cannot fit the probe budget must be
    // rejected up front, listing the probe-compatible zoo members.
    FlowConfig incompatible = cfg;
    incompatible.yield_sequential.pilot_samples = 24;
    incompatible.yield_sequential.chunk_samples = 8;
    incompatible.yield_sequential.max_samples = 48;
    incompatible.yield_sequential.min_samples = 8;
    incompatible.yield_probe.budget = 8;
    incompatible.yield_probe.estimator = "single_shift";
    try {
        (void)YieldFlow(ota, incompatible).run();
        FAIL() << "expected probe-incompatibility error";
    } catch (const InvalidInputError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("single_shift"), std::string::npos) << what;
        EXPECT_NE(what.find("plain_mc"), std::string::npos) << what;
    }
}

TEST(Flow, ProbesOffBitIdenticalToSeedFlow) {
    // The refactor's load-bearing guarantee: with probes disabled
    // (budget 0), every other probe knob may be set and the flow still
    // reproduces the probe-less pipeline bit-for-bit, RNG streams included.
    circuits::OtaConfig ota;
    FlowConfig cfg;
    cfg.ga.population = 8;
    cfg.ga.generations = 3;
    cfg.mc_samples = 12;
    cfg.max_mc_points = 4;
    cfg.seed = 77;
    cfg.yield_specs = {mc::Spec::at_least("gain_db", 30.0),
                       mc::Spec::at_least("pm_deg", 15.0)};
    cfg.yield_sequential.pilot_samples = 12;
    cfg.yield_sequential.chunk_samples = 12;
    cfg.yield_sequential.max_samples = 24;
    cfg.yield_sequential.min_samples = 12;
    const FlowResult seed = YieldFlow(ota, cfg).run();

    FlowConfig knobs = cfg;
    knobs.yield_probe.budget = 0; // off - the only knob that matters
    knobs.yield_probe.activation_generation = 1;
    knobs.yield_probe.mode = moo::RobustnessMode::constraint;
    knobs.yield_probe.min_yield = 0.8;
    knobs.yield_probe.max_points = 2;
    knobs.yield_probe.estimator = "single_shift";
    const FlowResult off = YieldFlow(ota, knobs).run();

    ASSERT_EQ(off.optimisation.archive.size(), seed.optimisation.archive.size());
    for (std::size_t i = 0; i < off.optimisation.archive.size(); ++i) {
        EXPECT_EQ(off.optimisation.archive[i].objectives,
                  seed.optimisation.archive[i].objectives);
        EXPECT_EQ(off.optimisation.archive[i].fitness,
                  seed.optimisation.archive[i].fitness);
        EXPECT_TRUE(std::isnan(off.optimisation.archive[i].robustness));
    }
    ASSERT_EQ(off.front.size(), seed.front.size());
    for (std::size_t i = 0; i < off.front.size(); ++i) {
        EXPECT_EQ(off.front[i].gain_db, seed.front[i].gain_db);
        EXPECT_EQ(off.front[i].dgain_pct, seed.front[i].dgain_pct);
        EXPECT_TRUE(std::isnan(off.front[i].probe_yield));
    }
    ASSERT_EQ(off.yields.size(), seed.yields.size());
    for (std::size_t i = 0; i < off.yields.size(); ++i) {
        EXPECT_EQ(off.yields[i].result.estimate.yield,
                  seed.yields[i].result.estimate.yield);
        EXPECT_EQ(off.yields[i].result.estimate.ci_low,
                  seed.yields[i].result.estimate.ci_low);
        EXPECT_EQ(off.yields[i].result.samples_used,
                  seed.yields[i].result.samples_used);
        EXPECT_TRUE(std::isnan(off.yields[i].probe_yield));
    }
    EXPECT_EQ(off.timings.probe_points, 0u);
    EXPECT_EQ(off.timings.probe_samples, 0u);
}

TEST(Flow, ProbesOnSmokeReportsAndPropagates) {
    circuits::OtaConfig ota;
    FlowConfig cfg;
    cfg.ga.population = 8;
    cfg.ga.generations = 3;
    cfg.mc_samples = 12;
    cfg.max_mc_points = 4;
    cfg.seed = 77;
    cfg.yield_specs = {mc::Spec::at_least("gain_db", 30.0),
                       mc::Spec::at_least("pm_deg", 15.0)};
    cfg.yield_sequential.pilot_samples = 12;
    cfg.yield_sequential.chunk_samples = 12;
    cfg.yield_sequential.max_samples = 24;
    cfg.yield_sequential.min_samples = 12;
    cfg.yield_probe.budget = 32;              // plain_mc probes (no pilot)
    cfg.yield_probe.activation_generation = 1;
    cfg.yield_probe.max_points = 4;
    const FlowResult res = YieldFlow(ota, cfg).run();

    // Generations 1 and 2 probed their top-4 cohorts.
    EXPECT_EQ(res.timings.probe_points, 8u);
    EXPECT_GT(res.timings.probe_samples, 0u);
    EXPECT_LE(res.timings.probe_samples, 8u * 32u);
    EXPECT_GT(res.timings.probe_seconds, 0.0);

    std::size_t probed = 0;
    for (const auto& e : res.optimisation.archive)
        if (!std::isnan(e.robustness)) {
            ++probed;
            EXPECT_GE(e.robustness, 0.0);
            EXPECT_LE(e.robustness, 1.0);
        }
    EXPECT_EQ(probed, 8u);
    // The probe estimate travels archive -> front -> yield certificates
    // (matching NaN-ness included: an unprobed design stays unprobed).
    ASSERT_EQ(res.yields.size(), res.front.size());
    for (std::size_t i = 0; i < res.yields.size(); ++i) {
        if (std::isnan(res.front[i].probe_yield)) {
            EXPECT_TRUE(std::isnan(res.yields[i].probe_yield));
        } else {
            EXPECT_EQ(res.yields[i].probe_yield, res.front[i].probe_yield);
            EXPECT_GE(res.front[i].probe_yield, 0.0);
            EXPECT_LE(res.front[i].probe_yield, 1.0);
        }
    }
}

TEST(Verify, ModelVsTransistorErrorsSmallOnFrontPoint) {
    // Build a tiny real flow result: measure 5 sizings, use them as a
    // "front", then ask the model for a spec inside it.
    const circuits::OtaEvaluator ev;
    std::vector<FrontPointData> front;
    std::size_t id = 1;
    for (double w1 : {12e-6, 24e-6, 36e-6, 48e-6, 60e-6}) {
        circuits::OtaSizing s;
        s.w1 = w1;
        const auto perf = ev.measure(s);
        ASSERT_TRUE(perf.valid);
        FrontPointData p;
        p.design_id = id++;
        p.sizing = s;
        p.gain_db = perf.gain_db;
        p.pm_deg = perf.pm_deg;
        p.dgain_pct = 0.4;
        p.dpm_pct = 0.7;
        p.f3db = perf.bode.f3db;
        p.gbw = perf.bode.gbw;
        front.push_back(p);
    }
    const BehaviouralModel model(front);
    const double mid_gain = (model.gain_min() + model.gain_max()) / 2.0;
    const double low_pm = model.pm_min() + 0.2 * (model.pm_max() - model.pm_min());
    const SizingResult sized = model.size_for_spec(mid_gain, low_pm);
    const ModelVsTransistor cmp = compare_model_vs_transistor(ev, sized);
    // Paper Table 4 reports ~1 % errors; interpolating along a smooth real
    // front should land within a few percent.
    EXPECT_LT(cmp.gain_error_pct, 5.0);
    EXPECT_LT(cmp.pm_error_pct, 5.0);
}

} // namespace
