// Unit tests for the prototype-reuse batch kernels: spice::CircuitPrototype
// and the chunk measurement paths must be bit-identical to the per-point
// rebuild paths - for OTA and filter, nominal and under process
// realisations - safe to re-bind repeatedly, and thread-count invariant
// when driven through the evaluation engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "circuits/filter_problem.hpp"
#include "circuits/ota_problem.hpp"
#include "core/ota_mc.hpp"
#include "eval/engine.hpp"
#include "moo/population_eval.hpp"
#include "process/sampler.hpp"
#include "spice/analysis/ac.hpp"
#include "spice/analysis/ac_sweep.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/prototype.hpp"
#include "util/rng.hpp"

namespace {

using namespace ypm;

bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Bitwise comparison that treats NaN == NaN (failure sentinels).
void expect_rows_identical(const std::vector<double>& a,
                           const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i]) && std::isnan(b[i])) continue;
        EXPECT_TRUE(bits_equal(a[i], b[i]))
            << "column " << i << ": " << a[i] << " vs " << b[i];
    }
}

void expect_perf_identical(const circuits::OtaPerformance& scalar,
                           const circuits::OtaPerformance& chunk) {
    ASSERT_EQ(scalar.valid, chunk.valid);
    if (!scalar.valid) return;
    EXPECT_TRUE(bits_equal(scalar.gain_db, chunk.gain_db));
    EXPECT_TRUE(bits_equal(scalar.pm_deg, chunk.pm_deg));
    EXPECT_TRUE(bits_equal(scalar.bode.unity_freq, chunk.bode.unity_freq));
}

std::vector<circuits::OtaSizing> random_sizings(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    const auto specs = circuits::OtaSizing::parameter_specs();
    std::vector<circuits::OtaSizing> out;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> v;
        for (const auto& s : specs) v.push_back(rng.uniform(s.lo, s.hi));
        out.push_back(circuits::OtaSizing::from_vector(v));
    }
    return out;
}

// -------------------------------------------------------- sweep primitives

TEST(AcSweep, TransferBitIdenticalToRunAc) {
    const circuits::OtaConfig cfg;
    const circuits::OtaSizing sizing;
    spice::Circuit ckt = circuits::build_ota_testbench(sizing, cfg);
    const spice::DcSolver solver;
    const auto op = solver.solve(ckt);
    ASSERT_TRUE(op.converged);
    const auto freqs =
        spice::log_sweep(cfg.f_start, cfg.f_stop, cfg.points_per_decade);
    const auto ac = spice::run_ac(ckt, op.solution, freqs);
    const auto out = *ckt.find_node("out");
    const auto inp = *ckt.find_node("inp");
    const auto h_ref = ac.transfer(out, inp);

    spice::AcSweepWorkspace ws;
    const auto h = spice::ac_sweep_transfer(ckt, op.solution, freqs, out, inp, ws);
    ASSERT_EQ(h.size(), h_ref.size());
    for (std::size_t i = 0; i < h.size(); ++i) {
        EXPECT_TRUE(bits_equal(h[i].real(), h_ref[i].real())) << "freq " << i;
        EXPECT_TRUE(bits_equal(h[i].imag(), h_ref[i].imag())) << "freq " << i;
    }
}

TEST(CircuitPrototype, CachesStructureAndSlots) {
    spice::CircuitPrototype proto(
        circuits::build_ota_testbench(circuits::OtaSizing{}, {}));
    EXPECT_TRUE(proto.circuit().finalized());
    EXPECT_EQ(proto.mosfets().size(), 10u);
    EXPECT_EQ(proto.node("out"), *proto.circuit().find_node("out"));
    EXPECT_NO_THROW((void)proto.device<spice::Mosfet>("m1"));
    EXPECT_THROW((void)proto.device<spice::Mosfet>("nope"), InvalidInputError);
    EXPECT_THROW((void)proto.node("nope"), InvalidInputError);
}

// ------------------------------------------------------------- OTA chunks

TEST(OtaChunk, BitIdenticalToScalarAcrossRandomSizings) {
    const circuits::OtaEvaluator evaluator;
    const auto sizings = random_sizings(12, 7);
    const auto chunk = evaluator.measure_chunk(sizings);
    ASSERT_EQ(chunk.size(), sizings.size());
    std::size_t valid = 0;
    for (std::size_t i = 0; i < sizings.size(); ++i) {
        const auto scalar = evaluator.measure(sizings[i]);
        expect_perf_identical(scalar, chunk[i]);
        if (scalar.valid) ++valid;
    }
    // The box sampling must exercise the real path, not just failures.
    EXPECT_GT(valid, 0u);
}

TEST(OtaChunk, BitIdenticalUnderProcessRealizations) {
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing; // nominal center point
    spice::Circuit ckt = circuits::build_ota_testbench(sizing, evaluator.config());
    const auto geometries = ckt.mos_geometries();
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());

    Rng rng(11);
    std::vector<process::Realization> reals;
    for (int i = 0; i < 8; ++i) reals.push_back(sampler.sample(rng, geometries));

    const auto chunk = evaluator.measure_chunk(sizing, reals);
    ASSERT_EQ(chunk.size(), reals.size());
    for (std::size_t i = 0; i < reals.size(); ++i) {
        const auto scalar = evaluator.measure(sizing, reals[i]);
        expect_perf_identical(scalar, chunk[i]);
    }
}

TEST(OtaChunk, PairedSizingsAndRealizations) {
    const circuits::OtaEvaluator evaluator;
    const auto sizings = random_sizings(5, 3);
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    Rng rng(5);
    std::vector<process::Realization> reals;
    for (const auto& s : sizings) {
        spice::Circuit ckt = circuits::build_ota_testbench(s, evaluator.config());
        reals.push_back(sampler.sample(rng, ckt.mos_geometries()));
    }
    const auto chunk = evaluator.measure_chunk(sizings, reals);
    for (std::size_t i = 0; i < sizings.size(); ++i)
        expect_perf_identical(evaluator.measure(sizings[i], reals[i]), chunk[i]);
}

TEST(OtaChunk, PairedChunkRejectsMismatchedSizes) {
    const circuits::OtaEvaluator evaluator;
    const auto sizings = random_sizings(2, 1);
    const std::vector<process::Realization> reals(1);
    EXPECT_THROW((void)evaluator.measure_chunk(sizings, reals), InvalidInputError);
}

TEST(OtaChunk, PrototypeSafeToRebindRepeatedly) {
    // A -> B -> A through one prototype: the third measurement must equal
    // the first bit-for-bit (no state leaks across re-binds), and both must
    // equal the fresh-build path.
    const circuits::OtaEvaluator evaluator;
    const auto ab = random_sizings(2, 19);
    const std::vector<circuits::OtaSizing> seq = {ab[0], ab[1], ab[0], ab[1],
                                                  ab[0]};
    const auto chunk = evaluator.measure_chunk(seq);
    expect_perf_identical(chunk[0], chunk[2]);
    expect_perf_identical(chunk[0], chunk[4]);
    expect_perf_identical(chunk[1], chunk[3]);
    expect_perf_identical(evaluator.measure(ab[0]), chunk[0]);
    expect_perf_identical(evaluator.measure(ab[1]), chunk[1]);
}

// ---------------------------------------------------------- prototype pool

TEST(PrototypePool, WarmInstanceBitIdenticalToCold) {
    // The persistent pool hands the same instance to successive chunk
    // calls; a warm instance (already measured dozens of points) must
    // answer bit-identically to a cold fresh-build measurement.
    const circuits::OtaEvaluator evaluator;
    const auto first = random_sizings(8, 41);
    const auto second = random_sizings(8, 43);

    const auto cold_rows = evaluator.measure_chunk(first);
    ASSERT_GE(evaluator.prototype_pool().created(), 1u);
    const std::size_t created_after_first = evaluator.prototype_pool().created();

    // Second chunk: must reuse the warm instance, not build a new one.
    const auto warm_rows = evaluator.measure_chunk(second);
    EXPECT_EQ(evaluator.prototype_pool().created(), created_after_first);
    EXPECT_GE(evaluator.prototype_pool().idle(), 1u);

    // Warm results equal a *fresh* evaluator's cold results bit-for-bit.
    const circuits::OtaEvaluator fresh;
    const auto fresh_rows = fresh.measure_chunk(second);
    ASSERT_EQ(warm_rows.size(), fresh_rows.size());
    for (std::size_t i = 0; i < warm_rows.size(); ++i)
        expect_perf_identical(fresh_rows[i], warm_rows[i]);
    // ... and the scalar rebuild path agrees too.
    for (std::size_t i = 0; i < warm_rows.size(); ++i)
        expect_perf_identical(evaluator.measure(second[i]), warm_rows[i]);
    (void)cold_rows;
}

TEST(PrototypePool, WarmReuseAcrossMixedChunkEntryPoints) {
    // All three OTA chunk entry points lease from one pool: sizing-only,
    // paired, and one-sizing/many-realisations calls share warm instances.
    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    const auto sizings = random_sizings(4, 47);

    (void)evaluator.measure_chunk(sizings);
    const std::size_t created = evaluator.prototype_pool().created();

    Rng rng(3);
    spice::Circuit tb =
        circuits::build_ota_testbench(sizings[0], evaluator.config());
    const auto geometries = tb.mos_geometries();
    std::vector<process::Realization> reals;
    for (int i = 0; i < 4; ++i)
        reals.push_back(sampler.sample(rng, geometries));

    (void)evaluator.measure_chunk(sizings, reals);
    (void)evaluator.measure_chunk(sizings[0], reals);
    EXPECT_EQ(evaluator.prototype_pool().created(), created);

    // Re-binding through the warm instance leaks no process state: the
    // nominal chunk after process-bound chunks equals the scalar path.
    const auto after = evaluator.measure_chunk(sizings);
    for (std::size_t i = 0; i < sizings.size(); ++i)
        expect_perf_identical(evaluator.measure(sizings[i]), after[i]);
}

TEST(PrototypePool, FilterPoolKeyedByModelKind) {
    const circuits::FilterEvaluator evaluator{circuits::FilterConfig{},
                                              circuits::FilterSpecMask{}};
    Rng rng(53);
    std::vector<circuits::FilterSizing> sizings;
    for (int i = 0; i < 4; ++i)
        sizings.push_back({rng.uniform(2e-12, 60e-12), rng.uniform(2e-12, 60e-12),
                           rng.uniform(2e-12, 60e-12)});

    // The behavioural and transistor testbenches are structurally different
    // circuits, so each kind builds (and then reuses) its own prototype.
    (void)evaluator.measure_chunk(sizings, circuits::OtaModelKind::behavioural);
    EXPECT_EQ(evaluator.prototype_pool().created(), 1u);
    (void)evaluator.measure_chunk(sizings, circuits::OtaModelKind::transistor);
    EXPECT_EQ(evaluator.prototype_pool().created(), 2u);
    (void)evaluator.measure_chunk(sizings, circuits::OtaModelKind::behavioural);
    (void)evaluator.measure_chunk(sizings, circuits::OtaModelKind::transistor);
    EXPECT_EQ(evaluator.prototype_pool().created(), 2u);
    EXPECT_EQ(evaluator.prototype_pool().idle(), 2u);

    // Warm reuse stays bit-identical to the scalar path for both kinds.
    for (auto kind : {circuits::OtaModelKind::behavioural,
                      circuits::OtaModelKind::transistor}) {
        const auto warm = evaluator.measure_chunk(sizings, kind);
        for (std::size_t i = 0; i < sizings.size(); ++i) {
            const auto scalar = evaluator.measure(sizings[i], kind);
            ASSERT_EQ(scalar.valid, warm[i].valid);
            if (!scalar.valid) continue;
            EXPECT_TRUE(bits_equal(scalar.fc, warm[i].fc));
            EXPECT_TRUE(bits_equal(scalar.worst_passband_dev_db,
                                   warm[i].worst_passband_dev_db));
        }
    }
}

TEST(PrototypePool, CopiedEvaluatorSharesWarmPool) {
    const circuits::OtaEvaluator original;
    (void)original.measure_chunk(random_sizings(2, 59));
    const std::size_t created = original.prototype_pool().created();
    const circuits::OtaEvaluator copy = original; // same config -> shares pool
    (void)copy.measure_chunk(random_sizings(2, 61));
    EXPECT_EQ(original.prototype_pool().created(), created);
}

// ----------------------------------------------------------- filter chunks

TEST(FilterChunk, BitIdenticalToScalarBothKinds) {
    const circuits::FilterEvaluator evaluator{circuits::FilterConfig{},
                                              circuits::FilterSpecMask{}};
    Rng rng(23);
    std::vector<circuits::FilterSizing> sizings;
    for (int i = 0; i < 6; ++i)
        sizings.push_back({rng.uniform(2e-12, 60e-12), rng.uniform(2e-12, 60e-12),
                           rng.uniform(2e-12, 60e-12)});
    for (auto kind : {circuits::OtaModelKind::behavioural,
                      circuits::OtaModelKind::transistor}) {
        const auto chunk = evaluator.measure_chunk(sizings, kind);
        ASSERT_EQ(chunk.size(), sizings.size());
        for (std::size_t i = 0; i < sizings.size(); ++i) {
            const auto scalar = evaluator.measure(sizings[i], kind);
            ASSERT_EQ(scalar.valid, chunk[i].valid);
            if (!scalar.valid) continue;
            EXPECT_TRUE(bits_equal(scalar.fc, chunk[i].fc));
            EXPECT_TRUE(bits_equal(scalar.passband_gain_db,
                                   chunk[i].passband_gain_db));
            EXPECT_TRUE(bits_equal(scalar.stopband_atten_db,
                                   chunk[i].stopband_atten_db));
            EXPECT_TRUE(bits_equal(scalar.worst_passband_dev_db,
                                   chunk[i].worst_passband_dev_db));
        }
    }
}

// --------------------------------------------------- problem batch + engine

TEST(ProblemBatch, OtaEvaluateBatchMatchesScalar) {
    const circuits::OtaProblem problem;
    const auto sizings = random_sizings(6, 31);
    std::vector<std::vector<double>> points;
    for (const auto& s : sizings) points.push_back(s.to_vector());
    const auto batch = problem.evaluate_batch(points);
    ASSERT_EQ(batch.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        expect_rows_identical(problem.evaluate(points[i]), batch[i]);
}

TEST(ProblemBatch, FilterEvaluateBatchMatchesScalar) {
    const circuits::FilterProblem problem{circuits::FilterConfig{},
                                          circuits::FilterSpecMask{}};
    Rng rng(37);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 6; ++i)
        points.push_back({rng.uniform(2e-12, 60e-12), rng.uniform(2e-12, 60e-12),
                          rng.uniform(2e-12, 60e-12)});
    const auto batch = problem.evaluate_batch(points);
    for (std::size_t i = 0; i < points.size(); ++i)
        expect_rows_identical(problem.evaluate(points[i]), batch[i]);
}

TEST(ProblemBatch, EngineEvaluationThreadCountInvariant) {
    // The engine chunks batches differently per worker count; the chunk
    // kernels must make that invisible.
    const circuits::OtaProblem problem;
    const auto sizings = random_sizings(10, 41);
    std::vector<std::vector<double>> points;
    for (const auto& s : sizings) points.push_back(s.to_vector());

    std::vector<std::vector<eval::EvalResult>> runs;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        eval::EngineConfig config;
        config.threads = threads;
        eval::Engine engine(config);
        runs.push_back(moo::evaluate_population(engine, problem, points));
    }
    for (std::size_t t = 1; t < runs.size(); ++t) {
        ASSERT_EQ(runs[t].size(), runs[0].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i)
            expect_rows_identical(runs[0][i].values, runs[t][i].values);
    }
    // And the engine path must agree with the scalar problem path.
    for (std::size_t i = 0; i < points.size(); ++i)
        expect_rows_identical(problem.evaluate(points[i]), runs[0][i].values);
}

TEST(ProblemBatch, OtaMonteCarloChunkMatchesScalarStreams) {
    // The chunked MC path (prototype reuse) must reproduce the scalar
    // SampleFn path sample-for-sample: same child streams, same rows.
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());

    spice::Circuit proto =
        circuits::build_ota_testbench(sizing, evaluator.config());
    const auto geometries = proto.mos_geometries();

    mc::McConfig cfg;
    cfg.samples = 16;
    Rng r_scalar(77);
    const auto scalar = mc::run_monte_carlo(
        cfg, r_scalar, [&](std::size_t, Rng& sample_rng) -> std::vector<double> {
            const auto real = sampler.sample(sample_rng, geometries);
            const auto perf = evaluator.measure(sizing, real);
            if (!perf.valid) return moo::failed_evaluation(2);
            return {perf.gain_db, perf.pm_deg};
        });

    eval::Engine engine;
    Rng r_chunk(77);
    const auto chunked = core::run_ota_monte_carlo(engine, evaluator, sizing,
                                                   sampler, cfg.samples, r_chunk);
    ASSERT_EQ(chunked.rows.size(), scalar.rows.size());
    for (std::size_t i = 0; i < scalar.rows.size(); ++i)
        expect_rows_identical(scalar.rows[i], chunked.rows[i]);
}

} // namespace
