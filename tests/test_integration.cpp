// End-to-end integration tests: a scaled-down version of the paper's full
// pipeline (Fig. 3), from WBGA optimisation through Monte Carlo variation
// modelling, table generation, yield-targeted sizing and final verification.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/behav_model.hpp"
#include "core/flow.hpp"
#include "core/verify.hpp"
#include "circuits/filter.hpp"
#include "mc/yield.hpp"

namespace {

using namespace ypm;
using namespace ypm::core;

// One shared scaled-down flow run (population 24 x 12 generations, 40 MC
// samples, front capped at 12 points) reused by every test in this file.
class PipelineTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        circuits::OtaConfig ota;
        FlowConfig cfg;
        cfg.ga.population = 24;
        cfg.ga.generations = 12;
        cfg.mc_samples = 40;
        cfg.max_mc_points = 12;
        cfg.seed = 2024;
        cfg.artifact_dir =
            (std::filesystem::temp_directory_path() / "ypm_e2e_artifacts").string();
        // Yield certification stage, scaled down: interior specs most
        // designs meet, tiny pilot/chunk budgets.
        cfg.yield_specs = {mc::Spec::at_least("gain_db", 30.0),
                           mc::Spec::at_least("pm_deg", 15.0)};
        cfg.yield_sequential.pilot_samples = 24;
        cfg.yield_sequential.chunk_samples = 24;
        cfg.yield_sequential.max_samples = 48;
        cfg.yield_sequential.min_samples = 24;
        static const YieldFlow flow(ota, cfg);
        static const FlowResult result = flow.run();
        result_ = &result;
    }

    static const FlowResult* result_;
};

const FlowResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, OptimisationRanFullBudget) {
    EXPECT_EQ(result_->optimisation.evaluations, 24u * 12u);
    EXPECT_EQ(result_->optimisation.archive.size(), 24u * 12u);
    EXPECT_EQ(result_->timings.moo_evaluations, 24u * 12u);
}

TEST_F(PipelineTest, ParetoFrontIsNonTrivialAndSorted) {
    ASSERT_GE(result_->pareto_indices.size(), 5u);
    const auto& archive = result_->optimisation.archive;
    for (std::size_t i = 1; i < result_->pareto_indices.size(); ++i) {
        const auto& prev = archive[result_->pareto_indices[i - 1]].objectives;
        const auto& cur = archive[result_->pareto_indices[i]].objectives;
        EXPECT_LE(prev[0], cur[0]); // gain ascending
        EXPECT_GE(prev[1], cur[1]); // pm descending (trade-off)
    }
}

TEST_F(PipelineTest, FrontEnrichedWithVariation) {
    ASSERT_GE(result_->front.size(), 5u);
    for (const auto& p : result_->front) {
        EXPECT_GT(p.gain_db, 30.0);
        EXPECT_GT(p.pm_deg, 0.0);
        EXPECT_GT(p.dgain_pct, 0.0);
        EXPECT_LT(p.dgain_pct, 5.0);
        EXPECT_GT(p.dpm_pct, 0.0);
        // Relative PM variation blows up at the low-PM end of the front
        // (small mean), so only a loose sanity bound applies globally.
        EXPECT_LT(p.dpm_pct, 60.0);
        EXPECT_GT(p.f3db, 0.0);
        EXPECT_LE(p.mc_failures, 4u);
    }
}

TEST_F(PipelineTest, ArtifactsWrittenToDisk) {
    EXPECT_TRUE(std::filesystem::exists(result_->artifacts.gain_delta_tbl));
    EXPECT_TRUE(std::filesystem::exists(result_->artifacts.va_module));
    EXPECT_EQ(result_->artifacts.param_tbls.size(), 8u);
}

TEST_F(PipelineTest, TimingsAccountedFor) {
    EXPECT_GT(result_->timings.moo_seconds, 0.0);
    EXPECT_GT(result_->timings.mc_seconds, 0.0);
    EXPECT_GE(result_->timings.total_seconds,
              result_->timings.moo_seconds + result_->timings.mc_seconds);
}

TEST_F(PipelineTest, YieldStageCertifiesEveryFrontPoint) {
    ASSERT_EQ(result_->yields.size(), result_->front.size());
    EXPECT_GT(result_->timings.yield_seconds, 0.0);
    for (std::size_t i = 0; i < result_->yields.size(); ++i) {
        const auto& y = result_->yields[i];
        EXPECT_EQ(y.design_id, result_->front[i].design_id);
        EXPECT_GT(y.result.samples_used, 0u);
        EXPECT_GE(y.result.estimate.yield, 0.0);
        EXPECT_LE(y.result.estimate.yield, 1.0);
        EXPECT_LE(y.result.estimate.ci_low, y.result.estimate.yield);
        EXPECT_GE(y.result.estimate.ci_high, y.result.estimate.yield);
        // Interior specs: these designs overwhelmingly pass.
        EXPECT_GE(y.result.estimate.yield, 0.8);
    }
}

TEST_F(PipelineTest, YieldTargetedSizingVerifies) {
    const BehaviouralModel model(result_->front);
    // Pick a requirement comfortably inside the front.
    const double req_gain =
        model.gain_min() + 0.3 * (model.gain_max() - model.gain_min());
    const double req_pm = model.pm_min() + 0.2 * (model.pm_max() - model.pm_min());
    const SizingResult sized = model.size_for_spec(req_gain, req_pm);
    EXPECT_GE(sized.target_gain_db, req_gain);

    // Table 4 analogue: the interpolated sizing simulates close to the
    // model's prediction.
    const circuits::OtaEvaluator evaluator;
    const ModelVsTransistor cmp = compare_model_vs_transistor(evaluator, sized);
    EXPECT_LT(cmp.gain_error_pct, 6.0);
    EXPECT_LT(cmp.pm_error_pct, 8.0);
}

TEST_F(PipelineTest, YieldVerificationHighForInteriorSpec) {
    const BehaviouralModel model(result_->front);
    const double req_gain =
        model.gain_min() + 0.25 * (model.gain_max() - model.gain_min());
    const double req_pm = model.pm_min() + 0.15 * (model.pm_max() - model.pm_min());
    const SizingResult sized = model.size_for_spec(req_gain, req_pm);
    if (!sized.feasible) GTEST_SKIP() << "spec not inside this tiny front";

    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    Rng rng(99);
    const YieldVerification v = verify_ota_yield(evaluator, sized.sizing, sampler,
                                                 req_gain, req_pm, 60, rng);
    // Paper: 100 % yield after inflation. Allow a couple of escapes on a
    // 60-sample check of a coarse front.
    EXPECT_GE(v.yield.yield, 0.9);
}

TEST_F(PipelineTest, MacromodelDrivesFilterDesign) {
    const BehaviouralModel model(result_->front);
    const double req_gain =
        model.gain_min() + 0.3 * (model.gain_max() - model.gain_min());
    const double req_pm = model.pm_min() + 0.2 * (model.pm_max() - model.pm_min());
    const SizingResult sized = model.size_for_spec(req_gain, req_pm);

    circuits::FilterConfig fcfg;
    fcfg.ota_spec = model.macromodel_spec(sized);
    fcfg.ota_sizing = sized.sizing;
    const circuits::FilterEvaluator fev(fcfg, circuits::FilterSpecMask{});
    const auto behav = fev.measure(circuits::FilterSizing{48e-12, 24e-12, 8e-12},
                                   circuits::OtaModelKind::behavioural);
    ASSERT_TRUE(behav.valid) << behav.failure;
    EXPECT_FALSE(std::isnan(behav.fc));
}

} // namespace
