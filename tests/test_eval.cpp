// Unit tests for src/eval: the unified batched evaluation engine - LRU
// memoisation, within-batch dedup, deterministic stochastic child streams
// across thread counts, NaN failure propagation, counters, and equivalence
// of the scalar / batch / engine paths for moo problems and the MC runner.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>

#include "eval/cache.hpp"
#include "eval/engine.hpp"
#include "mc/monte_carlo.hpp"
#include "moo/population_eval.hpp"
#include "moo/test_problems.hpp"
#include "moo/wbga.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::eval;

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

/// Deterministic toy kernel: {sum, product} of the parameters.
std::vector<double> toy_kernel(const EvalRequest& r) {
    double sum = 0.0, prod = 1.0;
    for (double p : r.params) {
        sum += p;
        prod *= p;
    }
    return {sum + static_cast<double>(r.process_key), prod};
}

EvalBatch toy_batch(std::size_t n) {
    EvalBatch batch;
    for (std::size_t i = 0; i < n; ++i)
        batch.add({static_cast<double>(i), 0.5 * static_cast<double>(i)});
    return batch;
}

// ------------------------------------------------------------------ cache

TEST(LruCache, FindAfterInsert) {
    LruCache cache(4);
    cache.insert({{1.0, 2.0}, 0, 0}, {42.0});
    const auto hit = cache.find({{1.0, 2.0}, 0, 0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ((*hit)[0], 42.0);
    EXPECT_FALSE(cache.find({{1.0, 2.0}, 1, 0})); // other process point
    EXPECT_FALSE(cache.find({{1.0, 2.0}, 0, 1})); // other salt
    EXPECT_FALSE(cache.find({{1.0, 2.1}, 0, 0})); // other params
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
    LruCache cache(2);
    cache.insert({{1.0}, 0, 0}, {1.0});
    cache.insert({{2.0}, 0, 0}, {2.0});
    ASSERT_TRUE(cache.find({{1.0}, 0, 0})); // refresh key 1
    cache.insert({{3.0}, 0, 0}, {3.0});     // evicts key 2
    EXPECT_TRUE(cache.find({{1.0}, 0, 0}));
    EXPECT_FALSE(cache.find({{2.0}, 0, 0}));
    EXPECT_TRUE(cache.find({{3.0}, 0, 0}));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, ZeroCapacityDisables) {
    LruCache cache(0);
    cache.insert({{1.0}, 0, 0}, {1.0});
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.find({{1.0}, 0, 0}));
}

TEST(LruCache, BitExactKeying) {
    LruCache cache(4);
    cache.insert({{0.0}, 0, 0}, {1.0});
    // -0.0 == 0.0 as doubles, but the bit patterns differ: no false hit.
    EXPECT_FALSE(cache.find({{-0.0}, 0, 0}));
}

TEST(LruCache, RefreshAtCapacityKeepsSizeAndEvictionOrder) {
    // Regression test for insert()'s refresh semantics: re-inserting a
    // present key must replace its values, promote it to MRU and leave
    // size() alone - never evict to make room for a "new" entry.
    LruCache cache(2);
    cache.insert({{1.0}, 0, 0}, {1.0});
    cache.insert({{2.0}, 0, 0}, {2.0});
    cache.insert({{1.0}, 0, 0}, {10.0}); // refresh at capacity
    EXPECT_EQ(cache.size(), 2u);
    const auto refreshed = cache.find({{1.0}, 0, 0});
    ASSERT_TRUE(refreshed.has_value());
    EXPECT_DOUBLE_EQ((*refreshed)[0], 10.0);
    EXPECT_TRUE(cache.find({{2.0}, 0, 0})); // survived the refresh

    // The refresh moved key 1 to the MRU front, so the next eviction must
    // take key 2 (LRU), not key 1.
    cache.insert({{1.0}, 0, 0}, {11.0}); // key 1 MRU again
    cache.insert({{3.0}, 0, 0}, {3.0});  // evicts key 2
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.find({{1.0}, 0, 0}));
    EXPECT_FALSE(cache.find({{2.0}, 0, 0}));
    EXPECT_TRUE(cache.find({{3.0}, 0, 0}));
}

// ----------------------------------------------------------------- engine

TEST(Engine, BatchMatchesScalarKernel) {
    Engine engine;
    const EvalBatch batch = toy_batch(33);
    const auto results = engine.evaluate(batch, KernelFn(toy_kernel));
    ASSERT_EQ(results.size(), 33u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto direct = toy_kernel(batch.items[i]);
        EXPECT_EQ(results[i].values, direct);
        EXPECT_FALSE(results[i].from_cache);
    }
}

TEST(Engine, CacheHitsOnRepeatedPoints) {
    Engine engine;
    const EvalBatch batch = toy_batch(8);
    const auto first = engine.evaluate(batch, KernelFn(toy_kernel));
    const auto second = engine.evaluate(batch, KernelFn(toy_kernel));
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_TRUE(second[i].from_cache);
        EXPECT_EQ(second[i].values, first[i].values);
    }
    EXPECT_EQ(engine.counters().requests, 16u);
    EXPECT_EQ(engine.counters().evaluations, 8u);
    EXPECT_EQ(engine.counters().cache_hits, 8u);
}

TEST(Engine, WithinBatchDedupEvaluatesOnce) {
    Engine engine;
    EvalBatch batch;
    for (int rep = 0; rep < 5; ++rep) batch.add({3.0, 4.0});
    std::atomic<int> calls{0};
    const auto results = engine.evaluate(
        batch, KernelFn([&calls](const EvalRequest& r) {
            ++calls;
            return toy_kernel(r);
        }));
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(engine.counters().evaluations, 1u);
    EXPECT_EQ(engine.counters().cache_hits, 4u);
    for (const auto& r : results) EXPECT_EQ(r.values, results.front().values);
}

TEST(Engine, TagSeparatesKernelKeySpaces) {
    Engine engine;
    EvalBatch a;
    a.add({1.0, 2.0});
    EvalBatch b(77); // same point, different kernel tag
    b.add({1.0, 2.0});
    const auto ra = engine.evaluate(a, KernelFn(toy_kernel));
    const auto rb = engine.evaluate(
        b, KernelFn([](const EvalRequest&) { return std::vector<double>{9.0}; }));
    EXPECT_FALSE(rb.front().from_cache);
    EXPECT_EQ(rb.front().values, std::vector<double>{9.0});
    EXPECT_NE(ra.front().values, rb.front().values);
}

TEST(Engine, NonCacheableItemsBypassCache) {
    Engine engine;
    EvalBatch batch;
    batch.add({1.0}, kNominalProcess, false);
    const auto first = engine.evaluate(batch, KernelFn(toy_kernel));
    const auto second = engine.evaluate(batch, KernelFn(toy_kernel));
    EXPECT_FALSE(second.front().from_cache);
    EXPECT_EQ(engine.counters().evaluations, 2u);
    EXPECT_EQ(engine.counters().cache_hits, 0u);
}

TEST(Engine, NanFailurePropagates) {
    Engine engine;
    EvalBatch batch = toy_batch(6);
    const auto results = engine.evaluate(
        batch, KernelFn([](const EvalRequest& r) -> std::vector<double> {
            if (r.params[0] >= 3.0) return {nan_v, 1.0};
            return toy_kernel(r);
        }));
    std::size_t failed = 0;
    for (const auto& r : results) {
        if (r.failed()) ++failed;
        // The engine's failure flag and the moo-level helper must agree.
        EXPECT_EQ(r.failed(), moo::evaluation_failed(r.values));
    }
    EXPECT_EQ(failed, 3u);
    EXPECT_EQ(engine.counters().failures, 3u);
}

TEST(Engine, DedupAliasOfFailedSourcePropagatesFailure) {
    // Regression test: within-batch dedup used to copy only `values` from
    // the source item and count every alias as a successful cache hit. A
    // failed source must mark its aliases failed and charge the ledger once
    // per alias.
    Engine engine;
    EvalBatch batch;
    for (int rep = 0; rep < 5; ++rep) batch.add({3.0, 4.0});
    const auto results = engine.evaluate(
        batch, KernelFn([](const EvalRequest&) -> std::vector<double> {
            return {nan_v, 1.0};
        }));
    ASSERT_EQ(results.size(), 5u);
    for (const auto& r : results) EXPECT_TRUE(r.failed());
    EXPECT_EQ(engine.counters().evaluations, 1u);
    EXPECT_EQ(engine.counters().cache_hits, 4u);
    EXPECT_EQ(engine.counters().failures, 5u); // source + 4 aliases
}

TEST(Engine, CacheHitOfFailedPointCountsAsFailure) {
    // Cross-batch twin of the dedup-alias rule: an LRU hit on a cached NaN
    // row is a request answered by a known-failed evaluation, so it must be
    // flagged and charged exactly like a within-batch alias would be.
    Engine engine;
    const auto kernel = KernelFn(
        [](const EvalRequest&) -> std::vector<double> { return {nan_v, 1.0}; });
    EvalBatch batch;
    batch.add({6.0, 6.0});
    (void)engine.evaluate(batch, kernel);
    const auto hit = engine.evaluate(batch, kernel);
    EXPECT_TRUE(hit.front().from_cache);
    EXPECT_TRUE(hit.front().failure);
    EXPECT_EQ(engine.counters().evaluations, 1u);
    EXPECT_EQ(engine.counters().cache_hits, 1u);
    EXPECT_EQ(engine.counters().failures, 2u); // fresh failure + its hit
}

TEST(Engine, DedupAliasOfEmptyRowFailurePropagates) {
    // An empty row cannot describe its own failure through the NaN scan, so
    // the explicit failure flag must carry it to the aliases - and the row
    // must stay out of the LRU, where it would come back looking healthy.
    Engine engine;
    EvalBatch batch;
    for (int rep = 0; rep < 3; ++rep) batch.add({7.0});
    const auto kernel =
        KernelFn([](const EvalRequest&) { return std::vector<double>{}; });
    const auto results = engine.evaluate(batch, kernel);
    for (const auto& r : results) EXPECT_TRUE(r.failed());
    EXPECT_EQ(engine.counters().failures, 3u);
    EXPECT_EQ(engine.cache_size(), 0u);

    // A later batch on the same point re-evaluates instead of hitting a
    // cached empty row.
    EvalBatch again;
    again.add({7.0});
    const auto second = engine.evaluate(again, kernel);
    EXPECT_FALSE(second.front().from_cache);
    EXPECT_TRUE(second.front().failed());
    EXPECT_EQ(engine.counters().evaluations, 2u);
}

TEST(Engine, DeterministicAcrossThreadCounts) {
    auto kernel = StochasticKernelFn([](const EvalRequest& r, Rng& rng) {
        return std::vector<double>{rng.gauss(r.params[0], 1.0), rng.uniform01()};
    });
    std::vector<std::vector<EvalResult>> runs;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        EngineConfig config;
        config.threads = threads;
        Engine engine(config);
        Rng rng(42);
        runs.push_back(engine.evaluate(toy_batch(64), kernel, rng));
    }
    for (std::size_t t = 1; t < runs.size(); ++t) {
        ASSERT_EQ(runs[t].size(), runs[0].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i)
            EXPECT_EQ(runs[t][i].values, runs[0][i].values)
                << "thread-count run " << t << ", item " << i;
    }
}

TEST(Engine, SerialAndParallelIdentical) {
    auto kernel = StochasticKernelFn([](const EvalRequest&, Rng& rng) {
        return std::vector<double>{rng.uniform01()};
    });
    EngineConfig serial;
    serial.parallel = false;
    Engine e1(serial), e2;
    Rng r1(7), r2(7);
    const auto a = e1.evaluate(toy_batch(32), kernel, r1);
    const auto b = e2.evaluate(toy_batch(32), kernel, r2);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].values, b[i].values);
}

TEST(Engine, LruEvictionForcesReEvaluation) {
    EngineConfig config;
    config.cache_capacity = 2;
    Engine engine(config);
    EvalBatch one;
    one.add({1.0});
    (void)engine.evaluate(one, KernelFn(toy_kernel));
    (void)engine.evaluate(toy_batch(4), KernelFn(toy_kernel)); // evicts {1.0}
    const auto again = engine.evaluate(one, KernelFn(toy_kernel));
    EXPECT_FALSE(again.front().from_cache);
    EXPECT_EQ(engine.counters().evaluations, 6u);
}

TEST(Engine, ChunkKernelMatchesScalar) {
    Engine engine;
    const EvalBatch batch = toy_batch(23);
    const auto scalar = engine.evaluate(batch, KernelFn(toy_kernel));
    engine.clear_cache();
    const auto chunked = engine.evaluate(
        batch, BatchKernelFn([](const std::vector<const EvalRequest*>& reqs) {
            std::vector<std::vector<double>> out;
            for (const auto* r : reqs) out.push_back(toy_kernel(*r));
            return out;
        }));
    for (std::size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(chunked[i].values, scalar[i].values);
}

TEST(Engine, StochasticChunkKernelMatchesScalar) {
    // The chunked stochastic path must reproduce the scalar stochastic
    // path sample-for-sample: same child streams, same salts, any chunking.
    auto scalar_kernel = StochasticKernelFn([](const EvalRequest& r, Rng& rng) {
        return std::vector<double>{rng.gauss(r.params[0], 1.0), rng.uniform01()};
    });
    auto chunk_kernel = StochasticBatchKernelFn(
        [](const std::vector<const EvalRequest*>& reqs, std::span<Rng> rngs) {
            std::vector<std::vector<double>> out;
            for (std::size_t k = 0; k < reqs.size(); ++k)
                out.push_back({rngs[k].gauss(reqs[k]->params[0], 1.0),
                               rngs[k].uniform01()});
            return out;
        });
    Engine e1, e2;
    Rng r1(13), r2(13);
    const auto scalar = e1.evaluate(toy_batch(48), scalar_kernel, r1);
    const auto chunked = e2.evaluate(toy_batch(48), chunk_kernel, r2);
    ASSERT_EQ(chunked.size(), scalar.size());
    for (std::size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(chunked[i].values, scalar[i].values) << "item " << i;
}

TEST(Engine, StochasticChunkKernelThreadCountInvariant) {
    auto kernel = StochasticBatchKernelFn(
        [](const std::vector<const EvalRequest*>& reqs, std::span<Rng> rngs) {
            std::vector<std::vector<double>> out;
            for (std::size_t k = 0; k < reqs.size(); ++k)
                out.push_back({rngs[k].uniform01()});
            return out;
        });
    std::vector<std::vector<EvalResult>> runs;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        EngineConfig config;
        config.threads = threads;
        Engine engine(config);
        Rng rng(99);
        runs.push_back(engine.evaluate(toy_batch(64), kernel, rng));
    }
    for (std::size_t t = 1; t < runs.size(); ++t)
        for (std::size_t i = 0; i < runs[0].size(); ++i)
            EXPECT_EQ(runs[t][i].values, runs[0][i].values)
                << "thread-count run " << t << ", item " << i;
}

TEST(Engine, StochasticChunkKernelArityChecked) {
    EngineConfig config;
    config.parallel = false;
    Engine engine(config);
    Rng rng(1);
    EXPECT_THROW(
        (void)engine.evaluate(
            toy_batch(4),
            StochasticBatchKernelFn(
                [](const std::vector<const EvalRequest*>&, std::span<Rng>) {
                    return std::vector<std::vector<double>>{};
                }),
            rng),
        InvalidInputError);
}

TEST(Engine, ChunkKernelArityChecked) {
    EngineConfig config;
    config.parallel = false;
    Engine engine(config);
    EXPECT_THROW(
        (void)engine.evaluate(
            toy_batch(4),
            BatchKernelFn([](const std::vector<const EvalRequest*>&) {
                return std::vector<std::vector<double>>{};
            })),
        InvalidInputError);
}

TEST(Engine, EmptyBatchIsANoOp) {
    Engine engine;
    const auto results = engine.evaluate(EvalBatch{}, KernelFn(toy_kernel));
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(engine.counters().requests, 0u);
}

TEST(Engine, WallTimeAccumulates) {
    Engine engine;
    (void)engine.evaluate(toy_batch(16), KernelFn(toy_kernel));
    EXPECT_GE(engine.counters().wall_seconds, 0.0);
    const double after_one = engine.counters().wall_seconds;
    (void)engine.evaluate(toy_batch(16), KernelFn(toy_kernel));
    EXPECT_GE(engine.counters().wall_seconds, after_one);
}

// ------------------------------------------------- population bridge (moo)

TEST(PopulationEval, MatchesScalarProblemEvaluate) {
    const moo::ZdtProblem problem(1, 6);
    Engine engine;
    std::vector<std::vector<double>> points;
    Rng rng(11);
    for (int i = 0; i < 40; ++i) {
        std::vector<double> p(6);
        for (auto& v : p) v = rng.uniform01();
        points.push_back(p);
    }
    const auto results = moo::evaluate_population(engine, problem, points);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(results[i].values, problem.evaluate(points[i]));
}

TEST(PopulationEval, SharedEngineDoesNotChangeWbgaResults) {
    const moo::ToyAmplifierProblem problem;
    moo::WbgaConfig cfg;
    cfg.population = 16;
    cfg.generations = 8;

    Rng r1(5);
    const auto baseline = moo::Wbga(problem, cfg).run(r1);

    Engine engine;
    cfg.engine = &engine;
    Rng r2(5);
    const auto shared = moo::Wbga(problem, cfg).run(r2);

    ASSERT_EQ(shared.archive.size(), baseline.archive.size());
    for (std::size_t i = 0; i < shared.archive.size(); ++i) {
        EXPECT_EQ(shared.archive[i].objectives, baseline.archive[i].objectives);
        EXPECT_DOUBLE_EQ(shared.archive[i].fitness, baseline.archive[i].fitness);
    }
    // Elites re-enter the population every generation: the engine must have
    // served some of those repeats from its cache.
    EXPECT_EQ(engine.counters().requests, 16u * 8u);
    EXPECT_GT(engine.counters().cache_hits, 0u);
    EXPECT_LT(engine.counters().evaluations, engine.counters().requests);
}

// --------------------------------------------------------- MC runner bridge

TEST(McBridge, EngineOverloadMatchesLegacyRunner) {
    auto fn = [](std::size_t, Rng& rng) -> std::vector<double> {
        return {rng.gauss(10.0, 1.0), rng.uniform01()};
    };
    mc::McConfig config;
    config.samples = 48;

    Rng r1(9), r2(9);
    const auto legacy = mc::run_monte_carlo(config, r1, fn);
    Engine engine;
    const auto via_engine = mc::run_monte_carlo(engine, config, r2, fn);

    ASSERT_EQ(via_engine.rows.size(), legacy.rows.size());
    for (std::size_t i = 0; i < legacy.rows.size(); ++i)
        EXPECT_EQ(via_engine.rows[i], legacy.rows[i]);
    EXPECT_EQ(engine.counters().evaluations, 48u);
}

TEST(McBridge, FailureMaskReusedAcrossColumnQueries) {
    auto fn = [](std::size_t i, Rng&) -> std::vector<double> {
        if (i % 3 == 0) return {nan_v, nan_v};
        return {static_cast<double>(i), 2.0 * static_cast<double>(i)};
    };
    mc::McConfig config;
    config.samples = 12;
    Rng rng(1);
    const auto result = mc::run_monte_carlo(config, rng, fn);
    EXPECT_EQ(result.failed(), 4u);
    EXPECT_EQ(result.failure_mask().size(), 12u);
    EXPECT_EQ(result.column(0).size(), 8u);
    EXPECT_EQ(result.column(1).size(), 8u);
    EXPECT_EQ(result.column_summary(0).count, 8u);
}

} // namespace
