// Unit tests for src/linalg: dense matrix and partial-pivot LU (real and
// complex), including property-style randomised solve checks.

#include <gtest/gtest.h>

#include <complex>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace ypm;
using linalg::Lu;
using linalg::MatrixC;
using linalg::MatrixD;

TEST(Matrix, ShapeAndIndexing) {
    MatrixD m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_FALSE(m.square());
    m(1, 2) = 7.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
    m.set_zero();
    EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
}

TEST(Matrix, IdentityMultiply) {
    const auto eye = MatrixD::identity(4);
    const std::vector<double> x = {1.0, -2.0, 3.0, 0.5};
    EXPECT_EQ(eye.multiply(x), x);
}

TEST(Matrix, NormInf) {
    MatrixD m(2, 2);
    m(0, 0) = 1.0;
    m(0, 1) = -4.0;
    m(1, 0) = 2.0;
    m(1, 1) = 2.0;
    EXPECT_DOUBLE_EQ(m.norm_inf(), 5.0);
}

TEST(Lu, SolvesKnownSystem) {
    // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
    MatrixD a(2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    const auto x = linalg::solve(a, {3.0, 5.0});
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RequiresPivoting) {
    // Zero on the initial diagonal forces a row swap.
    MatrixD a(2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    const auto x = linalg::solve(a, {2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
    MatrixD a(2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_THROW((void)Lu<double>(a), NumericalError);
}

TEST(Lu, RejectsNonSquare) {
    MatrixD a(2, 3);
    EXPECT_THROW((void)Lu<double>(a), NumericalError);
}

TEST(Lu, DeterminantKnown) {
    MatrixD a(2);
    a(0, 0) = 3;
    a(0, 1) = 1;
    a(1, 0) = 4;
    a(1, 1) = 2;
    const Lu<double> lu(a);
    EXPECT_NEAR(lu.determinant(), 2.0, 1e-12);
}

TEST(Lu, DeterminantSignWithPermutation) {
    MatrixD a(2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    const Lu<double> lu(a);
    EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, MultipleRhsFromOneFactorisation) {
    MatrixD a(3);
    a(0, 0) = 4;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    a(1, 2) = 1;
    a(2, 1) = 1;
    a(2, 2) = 2;
    const Lu<double> lu(a);
    for (const auto& rhs :
         {std::vector<double>{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 2, 3}}) {
        const auto x = lu.solve(rhs);
        const auto back = a.multiply(x);
        for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], rhs[i], 1e-10);
    }
}

TEST(Lu, ComplexSolve) {
    using C = std::complex<double>;
    MatrixC a(2);
    a(0, 0) = C(1, 1);
    a(0, 1) = C(0, 0);
    a(1, 0) = C(0, 0);
    a(1, 1) = C(0, 2);
    const auto x = linalg::solve(a, std::vector<C>{C(2, 0), C(0, 4)});
    EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
    EXPECT_NEAR(x[1].real(), 2.0, 1e-12);
    EXPECT_NEAR(x[1].imag(), 0.0, 1e-12);
}

TEST(Lu, RhsSizeMismatchThrows) {
    const Lu<double> lu(MatrixD::identity(3));
    std::vector<double> bad = {1.0, 2.0};
    EXPECT_THROW(lu.solve_in_place(bad), NumericalError);
}

// Property: random well-conditioned systems solve to high accuracy.
class LuRandomSolve : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSolve, ResidualIsTiny) {
    const std::size_t n = GetParam();
    Rng rng(1000 + n);
    MatrixD a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
        a(i, i) += static_cast<double>(n); // diagonal dominance
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-10.0, 10.0);
    const auto b = a.multiply(x_true);
    const auto x = linalg::solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSolve,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

// Property: complex random systems.
class LuRandomComplex : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomComplex, ResidualIsTiny) {
    using C = std::complex<double>;
    const std::size_t n = GetParam();
    Rng rng(2000 + n);
    MatrixC a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        a(i, i) += C(static_cast<double>(n), 0.0);
    }
    std::vector<C> x_true(n);
    for (auto& v : x_true) v = C(rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0));
    const auto b = a.multiply(x_true);
    const auto x = linalg::solve(a, b);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i].real(), x_true[i].real(), 1e-8);
        EXPECT_NEAR(x[i].imag(), x_true[i].imag(), 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomComplex, ::testing::Values(2, 4, 9, 17, 30));

TEST(Lu, PivotRatioReflectsConditioning) {
    // Identity: perfectly conditioned pivots.
    const Lu<double> good(MatrixD::identity(5));
    EXPECT_NEAR(good.pivot_ratio(), 1.0, 1e-12);

    MatrixD bad(2);
    bad(0, 0) = 1.0;
    bad(0, 1) = 0.0;
    bad(1, 0) = 0.0;
    bad(1, 1) = 1e-12;
    const Lu<double> poor(bad);
    EXPECT_LT(poor.pivot_ratio(), 1e-9);
}

} // namespace
