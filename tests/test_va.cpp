// Tests for the Verilog-A layer: the behavioural OTA device's electrical
// behaviour and the generated module text.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "spice/measure.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "va/behav_ota_device.hpp"
#include "va/va_codegen.hpp"

namespace {

using namespace ypm;
using namespace ypm::spice;

TEST(BehaviouralOta, ValidatesSpec) {
    Circuit c;
    va::BehaviouralOtaSpec bad;
    bad.rout = 0.0;
    EXPECT_THROW(c.add<va::BehaviouralOta>("o", c.node("a"), c.node("b"),
                                           c.node("o"), bad),
                 InvalidInputError);
    bad.rout = 1e6;
    bad.f3db = -1.0;
    EXPECT_THROW(c.add<va::BehaviouralOta>("o2", c.node("a"), c.node("b"),
                                           c.node("o"), bad),
                 InvalidInputError);
}

TEST(BehaviouralOta, OpenLoopDcGain) {
    Circuit c;
    const NodeId inp = c.node("inp");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vin", inp, ground, 1e-3);
    va::BehaviouralOtaSpec spec{40.0, 1e3, 1e3}; // A0 = 100, ro = 1k
    c.add<va::BehaviouralOta>("ota", inp, ground, out, spec);
    c.add<Resistor>("rl", out, ground, 1e9); // ~unloaded
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(out), 0.1, 1e-4); // 1 mV * 100
}

TEST(BehaviouralOta, OutputResistanceDividesWithLoad) {
    Circuit c;
    const NodeId inp = c.node("inp");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vin", inp, ground, 1e-3);
    va::BehaviouralOtaSpec spec{40.0, 1e3, 1e3};
    c.add<va::BehaviouralOta>("ota", inp, ground, out, spec);
    c.add<Resistor>("rl", out, ground, 1e3); // equal to rout -> halve
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(out), 0.05, 1e-4);
}

TEST(BehaviouralOta, UnityFeedbackBuffer) {
    Circuit c;
    const NodeId inp = c.node("inp");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vin", inp, ground, 1.0);
    va::BehaviouralOtaSpec spec{60.0, 1e4, 1e6};
    c.add<va::BehaviouralOta>("ota", inp, out, out, spec);
    c.add<Resistor>("rl", out, ground, 1e6);
    const Solution op = solve_op(c);
    // Buffer: out = A/(1+A) * in with loading; A = 1000.
    EXPECT_NEAR(op.voltage(out), 1.0, 5e-3);
}

TEST(BehaviouralOta, SinglePoleAcRollOff) {
    Circuit c;
    const NodeId inp = c.node("inp");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vin", inp, ground, 0.0, 1.0);
    va::BehaviouralOtaSpec spec{40.0, 10e3, 1e3};
    c.add<va::BehaviouralOta>("ota", inp, ground, out, spec);
    c.add<Resistor>("rl", out, ground, 1e9);
    const Solution op = solve_op(c);
    const auto freqs = log_sweep(10.0, 100e6, 10);
    const AcResult ac = run_ac(c, op, freqs);
    const auto h = ac.transfer(out, inp);
    const BodeMetrics m = bode_metrics(freqs, h);
    EXPECT_NEAR(m.dc_gain_db, 40.0, 0.05);
    EXPECT_NEAR(m.f3db, 10e3, 600.0);
    // Single pole -> ~90 deg phase margin at unity.
    EXPECT_NEAR(m.phase_margin_deg, 90.0, 1.5);
}

TEST(BehaviouralOta, MatchesPaperContributionForm) {
    // V(out) <+ A*(V(inp)-V(inn)) - I(out)*ro: check the differential input.
    Circuit c;
    const NodeId a = c.node("a");
    const NodeId b = c.node("b");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("va", a, ground, 0.3);
    c.add<VoltageSource>("vb", b, ground, 0.299);
    va::BehaviouralOtaSpec spec{40.0, 1e3, 1e3};
    c.add<va::BehaviouralOta>("ota", a, b, out, spec);
    c.add<Resistor>("rl", out, ground, 1e9);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(out), 100.0 * 1e-3, 1e-4);
}

// ---------------------------------------------------------------- codegen

TEST(VaCodegen, ContainsPaperStructure) {
    va::VaModuleFiles files;
    files.param_tables = {"lp1_data.tbl", "lp2_data.tbl", "lp3_data.tbl",
                          "lp4_data.tbl"};
    const std::string text = va::generate_va_module(files);
    // The structural elements of the paper's section 4.4 listing:
    EXPECT_NE(text.find("$table_model(gain, \"gain_delta.tbl\", \"3E\")"),
              std::string::npos);
    EXPECT_NE(text.find("$table_model(pm, \"pm_delta.tbl\", \"3E\")"),
              std::string::npos);
    EXPECT_NE(text.find("gain_prop = ((gain_delta/100)*gain)+gain;"),
              std::string::npos);
    EXPECT_NE(text.find("lp4 = $table_model(gain_prop, pm_prop, \"lp4_data.tbl\", "
                        "\"3E,3E\");"),
              std::string::npos);
    EXPECT_NE(text.find("pow(10, gain_prop/20)"), std::string::npos);
    EXPECT_NE(text.find("V(out) <+ (V(inp) - V(inn))*gain_in_v - I(out)*ro;"),
              std::string::npos);
    EXPECT_NE(text.find("$fopen(\"params.dat\")"), std::string::npos);
    EXPECT_NE(text.find("module ota_yield_model(inp, inn, out);"),
              std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VaCodegen, GeneralisesToNParameters) {
    va::VaModuleFiles files;
    for (int i = 1; i <= 8; ++i)
        files.param_tables.push_back("lp" + std::to_string(i) + "_data.tbl");
    const std::string text = va::generate_va_module(files);
    EXPECT_NE(text.find("real lp8;"), std::string::npos);
    EXPECT_NE(text.find("lp8 = $table_model"), std::string::npos);
}

TEST(VaCodegen, RequiresAtLeastOneTable) {
    va::VaModuleFiles files;
    EXPECT_THROW((void)va::generate_va_module(files), InvalidInputError);
}

TEST(VaCodegen, HonoursOptions) {
    va::VaModuleFiles files;
    files.param_tables = {"p1.tbl"};
    va::VaModuleOptions opts;
    opts.module_name = "my_model";
    opts.control_1d = "1C";
    const std::string text = va::generate_va_module(files, opts);
    EXPECT_NE(text.find("module my_model"), std::string::npos);
    EXPECT_NE(text.find("\"1C\""), std::string::npos);
}

} // namespace
