// Unit tests for the SPICE netlist parser: element cards, sources with AC
// specs, .model statements, continuation lines, subcircuit flattening and
// error reporting.

#include <gtest/gtest.h>

#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/devices/capacitor.hpp"
#include "spice/devices/diode.hpp"
#include "spice/devices/mosfet.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "spice/netlist.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace {

using namespace ypm;
using namespace ypm::spice;

TEST(Netlist, ParsesBasicElements) {
    auto parsed = parse_netlist("* divider\n"
                                "V1 in 0 10\n"
                                "R1 in mid 1k\n"
                                "R2 mid 0 1k\n"
                                "C1 mid 0 1p\n"
                                "L1 in top 1m\n");
    EXPECT_EQ(parsed.circuit.devices().size(), 5u);
    EXPECT_NE(parsed.circuit.find_device("r1"), nullptr);
    const auto* r = dynamic_cast<const Resistor*>(parsed.circuit.find_device("r1"));
    EXPECT_DOUBLE_EQ(r->resistance(), 1000.0);
}

TEST(Netlist, ParsedDividerSolves) {
    auto parsed = parse_netlist("V1 in 0 10\nR1 in mid 1k\nR2 mid 0 1k\n");
    const Solution op = solve_op(parsed.circuit);
    EXPECT_NEAR(op.voltage(*parsed.circuit.find_node("mid")), 5.0, 1e-6);
}

TEST(Netlist, SourceWithDcAndAc) {
    auto parsed = parse_netlist("V1 in 0 DC 1.65 AC 1 45\nR1 in 0 1k\n");
    const auto* v = dynamic_cast<const VoltageSource*>(parsed.circuit.find_device("v1"));
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->dc(), 1.65);
    EXPECT_DOUBLE_EQ(v->ac_magnitude(), 1.0);
}

TEST(Netlist, CurrentSourceAndControlled) {
    auto parsed = parse_netlist("I1 0 a 1m\n"
                                "R1 a 0 1k\n"
                                "E1 b 0 a 0 2\n"
                                "Rb b 0 1k\n"
                                "G1 c 0 a 0 1m\n"
                                "Rc c 0 2k\n");
    const Solution op = solve_op(parsed.circuit);
    const double va = op.voltage(*parsed.circuit.find_node("a"));
    EXPECT_NEAR(va, 1.0, 1e-6);
    EXPECT_NEAR(op.voltage(*parsed.circuit.find_node("b")), 2.0, 1e-6);
    EXPECT_NEAR(op.voltage(*parsed.circuit.find_node("c")), -2.0, 1e-6);
}

TEST(Netlist, DiodeCardWithParameters) {
    auto parsed = parse_netlist("Vin in 0 2\n"
                                "D1 in out is=1e-12 n=1.5 rs=5\n"
                                "Rl out 0 1k\n");
    const auto* d = dynamic_cast<const Diode*>(parsed.circuit.find_device("d1"));
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->params().is, 1e-12);
    EXPECT_DOUBLE_EQ(d->params().n, 1.5);
    EXPECT_DOUBLE_EQ(d->params().rs, 5.0);
    const Solution op = solve_op(parsed.circuit);
    // Forward-biased rectifier: out = in - drop, clearly above 1 V.
    EXPECT_GT(op.voltage(*parsed.circuit.find_node("out")), 1.0);
    EXPECT_THROW((void)parse_netlist("D1 a k bogus=1\n"), InvalidInputError);
}

TEST(Netlist, MosfetWithGeometryAndDefaultModels) {
    auto parsed = parse_netlist("Vd d 0 2\nVg g 0 1.2\n"
                                "M1 d g 0 0 nmos W=20u L=1u\n");
    const auto* m = dynamic_cast<const Mosfet*>(parsed.circuit.find_device("m1"));
    ASSERT_NE(m, nullptr);
    EXPECT_FALSE(m->is_pmos());
    EXPECT_DOUBLE_EQ(m->width(), 20e-6);
    EXPECT_DOUBLE_EQ(m->length(), 1e-6);
    const Solution op = solve_op(parsed.circuit);
    EXPECT_GT(m->op_info(op).id, 1e-5); // clearly on
}

TEST(Netlist, ModelStatementOverridesParams) {
    auto parsed = parse_netlist(".model hv pmos vth0=0.9 kp=50u\n"
                                "M1 d g s s hv W=10u L=2u\n"
                                "Vd d 0 0\nVg g 0 0\nVs s 0 3.3\n");
    const auto* m = dynamic_cast<const Mosfet*>(parsed.circuit.find_device("m1"));
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->is_pmos());
    EXPECT_DOUBLE_EQ(m->model().vth0, 0.9);
    EXPECT_DOUBLE_EQ(m->model().kp, 50e-6);
}

TEST(Netlist, ContinuationLines) {
    auto parsed = parse_netlist("V1 in 0\n+ DC 5\nR1 in 0 1k\n");
    const auto* v =
        dynamic_cast<const VoltageSource*>(parsed.circuit.find_device("v1"));
    EXPECT_DOUBLE_EQ(v->dc(), 5.0);
}

TEST(Netlist, TitleAndEnd) {
    auto parsed = parse_netlist(".title my test bench\n"
                                "R1 a 0 1k\n"
                                ".end\n"
                                "R2 b 0 1k\n"); // ignored after .end
    EXPECT_EQ(parsed.title, "my test bench");
    EXPECT_EQ(parsed.circuit.devices().size(), 1u);
}

TEST(Netlist, SubcircuitFlattening) {
    const char* text = ".subckt divider top bottom mid\n"
                       "R1 top mid 1k\n"
                       "R2 mid bottom 1k\n"
                       ".ends\n"
                       "V1 in 0 8\n"
                       "X1 in 0 half divider\n";
    auto parsed = parse_netlist(text);
    // Flattened devices get the instance prefix.
    EXPECT_NE(parsed.circuit.find_device("x1.r1"), nullptr);
    EXPECT_NE(parsed.circuit.find_device("x1.r2"), nullptr);
    const Solution op = solve_op(parsed.circuit);
    EXPECT_NEAR(op.voltage(*parsed.circuit.find_node("half")), 4.0, 1e-6);
}

TEST(Netlist, SubcircuitLocalNodesAreNamespaced) {
    const char* text = ".subckt cell a b\n"
                       "R1 a internal 1k\n"
                       "R2 internal b 1k\n"
                       ".ends\n"
                       "V1 in 0 2\n"
                       "X1 in 0 cell\n"
                       "X2 in 0 cell\n";
    auto parsed = parse_netlist(text);
    // Each instance has a private "internal" node.
    EXPECT_TRUE(parsed.circuit.find_node("x1.internal").has_value());
    EXPECT_TRUE(parsed.circuit.find_node("x2.internal").has_value());
    const Solution op = solve_op(parsed.circuit);
    EXPECT_NEAR(op.voltage(*parsed.circuit.find_node("x1.internal")), 1.0, 1e-6);
}

TEST(Netlist, GroundIsGlobalInsideSubckt) {
    const char* text = ".subckt load a\n"
                       "R1 a 0 2k\n"
                       ".ends\n"
                       "I1 0 n 1m\n"
                       "X1 n load\n";
    auto parsed = parse_netlist(text);
    const Solution op = solve_op(parsed.circuit);
    EXPECT_NEAR(op.voltage(*parsed.circuit.find_node("n")), 2.0, 1e-6);
}

TEST(Netlist, ParsedRcMatchesAnalyticPole) {
    auto parsed = parse_netlist("V1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1u\n");
    const Solution op = solve_op(parsed.circuit);
    const double fc = 1.0 / (2.0 * mathx::pi * 1e3 * 1e-6);
    const AcResult ac = run_ac(parsed.circuit, op, {fc});
    const auto h = ac.transfer(*parsed.circuit.find_node("out"),
                               *parsed.circuit.find_node("in"));
    EXPECT_NEAR(std::abs(h[0]), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
    try {
        (void)parse_netlist("R1 a 0 1k\nR2 b 0\n");
        FAIL() << "expected InvalidInputError";
    } catch (const InvalidInputError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Netlist, RejectsUnknownThings) {
    EXPECT_THROW((void)parse_netlist("Q1 a b c bjt\n"), InvalidInputError);
    EXPECT_THROW((void)parse_netlist("M1 d g s b nomodel W=1u L=1u\n"),
                 InvalidInputError);
    EXPECT_THROW((void)parse_netlist("X1 a b missing_sub\n"), InvalidInputError);
    EXPECT_THROW((void)parse_netlist(".directive foo\n"), InvalidInputError);
    EXPECT_THROW((void)parse_netlist("R1 a 0 abc\n"), InvalidInputError);
    EXPECT_THROW((void)parse_netlist("+ orphan continuation\n"), InvalidInputError);
}

TEST(Netlist, SubcktPinArityChecked) {
    const char* text = ".subckt cell a b\nR1 a b 1k\n.ends\nX1 n cell\n";
    EXPECT_THROW((void)parse_netlist(text), InvalidInputError);
}

TEST(Netlist, UnclosedSubcktRejected) {
    EXPECT_THROW((void)parse_netlist(".subckt cell a\nR1 a 0 1k\n"),
                 InvalidInputError);
}

} // namespace
