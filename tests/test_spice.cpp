// Unit tests for the simulator substrate: MNA stamps via known linear
// circuits, the Newton DC solver, AC analysis against closed-form transfer
// functions, DC sweeps and the Bode/lowpass measurement helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/analysis/dc_sweep.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/capacitor.hpp"
#include "spice/devices/controlled.hpp"
#include "spice/devices/inductor.hpp"
#include "spice/devices/mosfet.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "spice/measure.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace {

using namespace ypm;
using namespace ypm::spice;

// ---------------------------------------------------------------- circuit

TEST(Circuit, NodeNamingAndGroundAliases) {
    Circuit c;
    EXPECT_EQ(c.node("0"), ground);
    EXPECT_EQ(c.node("gnd"), ground);
    EXPECT_EQ(c.node("GND"), ground);
    const NodeId a = c.node("n1");
    EXPECT_EQ(c.node("N1"), a); // case-insensitive
    EXPECT_NE(c.node("n2"), a);
    EXPECT_EQ(c.node_count(), 2u);
    EXPECT_EQ(c.node_name(a), "n1");
}

TEST(Circuit, FindNodeAndDevice) {
    Circuit c;
    const NodeId a = c.node("a");
    c.add<Resistor>("r1", a, ground, 1e3);
    EXPECT_TRUE(c.find_node("a").has_value());
    EXPECT_FALSE(c.find_node("zz").has_value());
    EXPECT_NE(c.find_device("R1"), nullptr); // case-insensitive
    EXPECT_EQ(c.find_device("r2"), nullptr);
}

TEST(Circuit, DuplicateDeviceNameRejected) {
    Circuit c;
    c.add<Resistor>("r1", c.node("a"), ground, 1e3);
    EXPECT_THROW(c.add<Resistor>("R1", c.node("b"), ground, 2e3),
                 InvalidInputError);
}

TEST(Circuit, FinalizeAllocatesBranches) {
    Circuit c;
    c.add<VoltageSource>("v1", c.node("a"), ground, 1.0);
    c.add<Inductor>("l1", c.node("a"), c.node("b"), 1e-3);
    c.add<Resistor>("r1", c.node("b"), ground, 1e3);
    c.finalize();
    EXPECT_EQ(c.branch_count(), 2u);
    EXPECT_EQ(c.unknowns(), 2u + 2u);
}

TEST(Circuit, DeviceValidationErrors) {
    Circuit c;
    EXPECT_THROW(c.add<Resistor>("r", c.node("a"), ground, 0.0), InvalidInputError);
    EXPECT_THROW(c.add<Resistor>("r", c.node("a"), ground, -5.0), InvalidInputError);
    EXPECT_THROW(c.add<Capacitor>("c", c.node("a"), ground, -1e-12),
                 InvalidInputError);
    EXPECT_THROW(c.add<Inductor>("l", c.node("a"), ground, 0.0), InvalidInputError);
}

// --------------------------------------------------------------- DC basics

TEST(Dc, ResistorDivider) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId mid = c.node("mid");
    c.add<VoltageSource>("v1", in, ground, 10.0);
    c.add<Resistor>("r1", in, mid, 1e3);
    c.add<Resistor>("r2", mid, ground, 3e3);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(mid), 7.5, 1e-6);
    EXPECT_NEAR(op.voltage(in), 10.0, 1e-6);
}

TEST(Dc, VoltageSourceBranchCurrentConvention) {
    // 10 V across 1 kOhm: 10 mA flows out of the + terminal through the
    // circuit, so the branch current (into the + terminal through the
    // source) is -10 mA.
    Circuit c;
    const NodeId in = c.node("in");
    auto& v1 = c.add<VoltageSource>("v1", in, ground, 10.0);
    c.add<Resistor>("r1", in, ground, 1e3);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.branch_current(v1.current_branch()), -10e-3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
    // 1 mA pulled from ground, pushed into node a loaded by 2 kOhm: +2 V.
    Circuit c;
    const NodeId a = c.node("a");
    c.add<CurrentSource>("i1", ground, a, 1e-3);
    c.add<Resistor>("r1", a, ground, 2e3);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(a), 2.0, 1e-6);
}

TEST(Dc, InductorIsShort) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId mid = c.node("mid");
    c.add<VoltageSource>("v1", in, ground, 5.0);
    c.add<Inductor>("l1", in, mid, 1e-3);
    c.add<Resistor>("r1", mid, ground, 1e3);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(mid), 5.0, 1e-9);
    // Inductor branch carries the full 5 mA.
    const auto* l = dynamic_cast<const Inductor*>(c.find_device("l1"));
    EXPECT_NEAR(op.branch_current(l->current_branch()), 5e-3, 1e-9);
}

TEST(Dc, CapacitorIsOpen) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId mid = c.node("mid");
    c.add<VoltageSource>("v1", in, ground, 5.0);
    c.add<Resistor>("r1", in, mid, 1e3);
    c.add<Capacitor>("c1", mid, ground, 1e-9);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(mid), 5.0, 1e-6); // no DC current -> no drop
}

TEST(Dc, VcvsGain) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("v1", in, ground, 0.5);
    c.add<Vcvs>("e1", out, ground, in, ground, 20.0);
    c.add<Resistor>("rl", out, ground, 1e3);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(out), 10.0, 1e-9);
}

TEST(Dc, VccsTransconductance) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("v1", in, ground, 2.0);
    // gm = 1 mS, current flows out -> ground through the source: the output
    // node sees -gm*vin * R = -2 V over 1 kOhm.
    c.add<Vccs>("g1", out, ground, in, ground, 1e-3);
    c.add<Resistor>("rl", out, ground, 1e3);
    const Solution op = solve_op(c);
    EXPECT_NEAR(op.voltage(out), -2.0, 1e-6);
}

TEST(Dc, WarmStartConverges) {
    Circuit c;
    const NodeId in = c.node("in");
    c.add<VoltageSource>("v1", in, ground, 3.0);
    c.add<Resistor>("r1", in, ground, 1e3);
    const DcSolver solver;
    const DcResult cold = solver.solve(c);
    ASSERT_TRUE(cold.converged);
    const DcResult warm = solver.solve(c, cold.solution);
    EXPECT_TRUE(warm.converged);
    EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(Dc, EmptyishCircuitStillSolves) {
    Circuit c;
    c.add<Resistor>("r1", c.node("a"), ground, 1e3);
    const Solution op = solve_op(c); // floating-ish node held by gmin
    EXPECT_NEAR(op.voltage(*c.find_node("a")), 0.0, 1e-6);
}

// ---------------------------------------------------------------------- AC

TEST(Ac, RcLowpassPole) {
    // R = 1k, C = 1u -> fc = 1/(2 pi RC) ~ 159.15 Hz.
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("v1", in, ground, 0.0, 1.0);
    c.add<Resistor>("r1", in, out, 1e3);
    c.add<Capacitor>("c1", out, ground, 1e-6);
    const Solution op = solve_op(c);

    const double fc = 1.0 / (2.0 * mathx::pi * 1e3 * 1e-6);
    const AcResult ac = run_ac(c, op, {fc / 100.0, fc, fc * 100.0});
    const auto h = ac.transfer(out, in);
    EXPECT_NEAR(std::abs(h[0]), 1.0, 1e-3);
    EXPECT_NEAR(std::abs(h[1]), 1.0 / std::sqrt(2.0), 1e-3);
    EXPECT_NEAR(mathx::deg_from_rad(std::arg(h[1])), -45.0, 0.5);
    EXPECT_NEAR(std::abs(h[2]), 0.01, 2e-4);
}

TEST(Ac, RlHighpass) {
    // L = 1 mH, R = 100 -> fc = R/(2 pi L) ~ 15.9 kHz; out across L.
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("v1", in, ground, 0.0, 1.0);
    c.add<Resistor>("r1", in, out, 100.0);
    c.add<Inductor>("l1", out, ground, 1e-3);
    const Solution op = solve_op(c);

    const double fc = 100.0 / (2.0 * mathx::pi * 1e-3);
    const AcResult ac = run_ac(c, op, {fc / 100.0, fc, fc * 100.0});
    const auto h = ac.transfer(out, in);
    EXPECT_NEAR(std::abs(h[0]), 0.01, 2e-4);
    EXPECT_NEAR(std::abs(h[1]), 1.0 / std::sqrt(2.0), 1e-3);
    EXPECT_NEAR(std::abs(h[2]), 1.0, 1e-3);
}

TEST(Ac, SeriesRlcResonance) {
    // R = 10, L = 1 mH, C = 1 uF: f0 = 1/(2 pi sqrt(LC)) ~ 5.03 kHz,
    // at resonance the full source voltage appears across R.
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId m = c.node("m");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("v1", in, ground, 0.0, 1.0);
    c.add<Inductor>("l1", in, m, 1e-3);
    c.add<Capacitor>("c1", m, out, 1e-6);
    c.add<Resistor>("r1", out, ground, 10.0);
    const Solution op = solve_op(c);
    const double f0 = 1.0 / (2.0 * mathx::pi * std::sqrt(1e-3 * 1e-6));
    const AcResult ac = run_ac(c, op, {f0});
    const auto h = ac.transfer(out, in);
    EXPECT_NEAR(std::abs(h[0]), 1.0, 1e-3);
}

TEST(Ac, AcMagnitudeAndPhaseOfSource) {
    Circuit c;
    const NodeId in = c.node("in");
    c.add<VoltageSource>("v1", in, ground, 1.0, 2.0, 90.0);
    c.add<Resistor>("r1", in, ground, 1e3);
    const Solution op = solve_op(c);
    const AcResult ac = run_ac(c, op, {1e3});
    const auto v = ac.points[0].voltage(in);
    EXPECT_NEAR(v.real(), 0.0, 1e-9);
    EXPECT_NEAR(v.imag(), 2.0, 1e-9);
}

TEST(Ac, RejectsNonPositiveFrequency) {
    Circuit c;
    c.add<Resistor>("r1", c.node("a"), ground, 1.0);
    const Solution op = solve_op(c);
    EXPECT_THROW((void)run_ac(c, op, {0.0}), InvalidInputError);
}

TEST(Ac, LogSweepCoverage) {
    const auto f = log_sweep(10.0, 1e6, 10);
    EXPECT_DOUBLE_EQ(f.front(), 10.0);
    EXPECT_DOUBLE_EQ(f.back(), 1e6);
    EXPECT_GE(f.size(), 51u); // 5 decades * 10 + 1
    for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
}

// ----------------------------------------------------------------- sweeps

TEST(DcSweep, LinearCircuitTracksSource) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId mid = c.node("mid");
    c.add<VoltageSource>("vs", in, ground, 0.0);
    c.add<Resistor>("r1", in, mid, 1e3);
    c.add<Resistor>("r2", mid, ground, 1e3);
    const auto sweep = run_dc_sweep(c, "vs", {0.0, 1.0, 2.0, 3.0});
    const auto v = sweep.node_voltage(mid);
    ASSERT_EQ(v.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(v[i], 0.5 * static_cast<double>(i), 1e-9);
    // Source restored afterwards.
    const auto* vs = dynamic_cast<const VoltageSource*>(c.find_device("vs"));
    EXPECT_DOUBLE_EQ(vs->dc(), 0.0);
}

TEST(DcSweep, UnknownSourceThrows) {
    Circuit c;
    c.add<Resistor>("r1", c.node("a"), ground, 1.0);
    EXPECT_THROW((void)run_dc_sweep(c, "vx", {0.0}), InvalidInputError);
}

// --------------------------------------------------------------- measure

std::vector<std::complex<double>> single_pole(const std::vector<double>& freqs,
                                              double a0, double fp) {
    std::vector<std::complex<double>> h;
    for (double f : freqs) h.push_back(a0 / std::complex<double>(1.0, f / fp));
    return h;
}

TEST(Measure, SinglePoleMetrics) {
    const auto freqs = log_sweep(1.0, 1e9, 20);
    const double a0 = 1000.0, fp = 1e3; // 60 dB, GBW = 1 MHz
    const auto h = single_pole(freqs, a0, fp);
    const BodeMetrics m = bode_metrics(freqs, h);
    EXPECT_NEAR(m.dc_gain_db, 60.0, 0.01);
    EXPECT_NEAR(m.f3db, fp, fp * 0.03);
    EXPECT_NEAR(m.unity_freq, 1e6, 1e4);
    // Single pole: phase at crossover ~ -89.94 deg -> PM ~ 90 deg.
    EXPECT_NEAR(m.phase_margin_deg, 90.0, 0.5);
    EXPECT_NEAR(m.gbw, 1e6, 3e4);
}

TEST(Measure, TwoPolePhaseMargin) {
    // Second pole at a0*fp1: the true crossover sits below it. Solving
    // |H| = 1 gives f/f2 = sqrt((sqrt(5)-1)/2) ~ 0.786, so
    // PM ~ 90 - atan(0.786)*180/pi ~ 51.8 deg.
    const auto freqs = log_sweep(1.0, 1e9, 30);
    const double a0 = 100.0, fp1 = 1e3;
    const double f2 = a0 * fp1;
    std::vector<std::complex<double>> h;
    for (double f : freqs)
        h.push_back(a0 / (std::complex<double>(1.0, f / fp1) *
                          std::complex<double>(1.0, f / f2)));
    const BodeMetrics m = bode_metrics(freqs, h);
    EXPECT_NEAR(m.phase_margin_deg, 51.8, 2.0);
}

TEST(Measure, NoUnityCrossingGivesNan) {
    const auto freqs = log_sweep(1.0, 1e6, 10);
    const auto h = single_pole(freqs, 0.5, 1e3); // always below unity
    const BodeMetrics m = bode_metrics(freqs, h);
    EXPECT_TRUE(std::isnan(m.unity_freq));
    EXPECT_TRUE(std::isnan(m.phase_margin_deg));
}

TEST(Measure, PhaseUnwrappingIsContinuous) {
    // Three coincident poles wrap the raw atan2 phase past -180.
    const auto freqs = log_sweep(1.0, 1e8, 20);
    std::vector<std::complex<double>> h;
    for (double f : freqs) {
        const std::complex<double> pole(1.0, f / 1e3);
        h.push_back(1000.0 / (pole * pole * pole));
    }
    const auto phase = phase_deg_unwrapped(h);
    for (std::size_t i = 1; i < phase.size(); ++i)
        EXPECT_LT(std::fabs(phase[i] - phase[i - 1]), 90.0);
    EXPECT_LT(phase.back(), -250.0); // approaches -270
}

TEST(Measure, GainMarginOfThreePoleSystem) {
    const auto freqs = log_sweep(1.0, 1e8, 40);
    std::vector<std::complex<double>> h;
    for (double f : freqs) {
        const std::complex<double> pole(1.0, f / 1e3);
        h.push_back(8.0 / (pole * pole * pole)); // |H| at -180: 8/8 = 1 -> GM 0 dB
    }
    const BodeMetrics m = bode_metrics(freqs, h);
    // Phase hits -180 deg at f = sqrt(3)*fp where |H| = 8/8 = 1.
    EXPECT_NEAR(m.gain_margin_db, 0.0, 0.5);
}

TEST(Measure, LowpassMetricsButterworth) {
    const auto freqs = log_sweep(1e3, 1e8, 30);
    const double f0 = 1e6;
    std::vector<std::complex<double>> h;
    for (double f : freqs) {
        const double w = f / f0;
        // 2nd-order Butterworth: H = 1 / (1 + j sqrt(2) w - w^2)
        h.push_back(1.0 / std::complex<double>(1.0 - w * w, std::sqrt(2.0) * w));
    }
    const LowpassMetrics m = lowpass_metrics(freqs, h, 1e7);
    EXPECT_NEAR(m.passband_gain_db, 0.0, 0.01);
    EXPECT_NEAR(m.fc, f0, f0 * 0.03);
    EXPECT_NEAR(m.stopband_atten_db, 40.0, 1.0); // one decade out, 2nd order
}

TEST(Measure, RejectsBadSweep) {
    EXPECT_THROW((void)bode_metrics({1.0}, {{1.0, 0.0}}), InvalidInputError);
    EXPECT_THROW((void)bode_metrics({2.0, 1.0}, {{1.0, 0.0}, {1.0, 0.0}}),
                 InvalidInputError);
}

} // namespace
