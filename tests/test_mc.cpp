// Unit tests for src/mc: statistics, the paper's Δ(%) metric, yield with
// Wilson intervals, the MC runner and Latin hypercube sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "mc/lhs.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/stats.hpp"
#include "mc/yield.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::mc;

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

// ------------------------------------------------------------------ stats

TEST(Stats, SummaryKnownValues) {
    const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SummaryRejectsEmptyAndNan) {
    EXPECT_THROW((void)summarize({}), NumericalError);
    EXPECT_THROW((void)summarize({1.0, nan_v}), NumericalError);
}

TEST(Stats, SingleElementSummary) {
    const Summary s = summarize({3.0});
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
    const std::vector<double> d = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(d, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(d, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(d, 50.0), 2.5);
    EXPECT_THROW((void)percentile(d, 101.0), InvalidInputError);
}

TEST(Stats, HistogramCountsAndClamps) {
    const auto h = histogram({0.1, 0.9, 1.5, 2.5, -5.0, 99.0}, 3, 0.0, 3.0);
    ASSERT_EQ(h.size(), 3u);
    EXPECT_EQ(h[0], 3u); // 0.1, 0.9, -5 (clamped)
    EXPECT_EQ(h[1], 1u); // 1.5
    EXPECT_EQ(h[2], 2u); // 2.5, 99 (clamped)
}

TEST(Stats, VariationMetricsMatchPaperDefinition) {
    // Population with mean 50, sd ~0.0833 -> Δ3σ = 3*sd/50*100 = 0.5 %.
    std::vector<double> d;
    for (int i = -10; i <= 10; ++i) d.push_back(50.0 + 0.08333 * i / 3.873);
    const VariationMetrics m = variation_metrics(d);
    EXPECT_NEAR(m.summary.mean, 50.0, 1e-6);
    EXPECT_NEAR(m.delta_3sigma_pct, 3.0 * m.summary.stddev / 50.0 * 100.0, 1e-12);
    EXPECT_NEAR(m.delta_halfrange_pct,
                0.5 * (m.summary.max - m.summary.min) / 50.0 * 100.0, 1e-12);
}

TEST(Stats, VariationMetricsDegenerateMean) {
    // Population varying around a zero mean: the relative Δ% is undefined.
    // Contract: both deltas report +inf (worse than any finite threshold,
    // so hygiene filters drop such points) and relative_valid flags it.
    const VariationMetrics zero_mean = variation_metrics({-1.0, 1.0});
    EXPECT_FALSE(zero_mean.relative_valid);
    EXPECT_TRUE(std::isinf(zero_mean.delta_3sigma_pct));
    EXPECT_TRUE(std::isinf(zero_mean.delta_halfrange_pct));
    EXPECT_GT(zero_mean.delta_3sigma_pct, 0.0);

    // Tiny-but-nonzero mean whose ratio overflows: same degenerate contract
    // (this used to silently return +/-inf-ish garbage via the raw divide).
    const VariationMetrics tiny_mean = variation_metrics({-1.0, 1.0 + 1e-300});
    EXPECT_FALSE(tiny_mean.relative_valid);
    EXPECT_TRUE(std::isinf(tiny_mean.delta_3sigma_pct));

    // A constant population has no variation at all - 0 %, even at mean 0.
    const VariationMetrics constant = variation_metrics({0.0, 0.0, 0.0});
    EXPECT_TRUE(constant.relative_valid);
    EXPECT_EQ(constant.delta_3sigma_pct, 0.0);
    EXPECT_EQ(constant.delta_halfrange_pct, 0.0);
}

TEST(Stats, CorrelationKnownCases) {
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
    const std::vector<double> z = {10, 8, 6, 4, 2};
    EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
}

// ------------------------------------------------------------------ yield

TEST(Yield, SpecKindsPassCorrectly) {
    EXPECT_TRUE(Spec::at_least("g", 50.0).pass(50.0));
    EXPECT_TRUE(Spec::at_least("g", 50.0).pass(51.0));
    EXPECT_FALSE(Spec::at_least("g", 50.0).pass(49.9));
    EXPECT_TRUE(Spec::at_most("p", 1.0).pass(0.5));
    EXPECT_FALSE(Spec::at_most("p", 1.0).pass(1.5));
    EXPECT_TRUE(Spec::range("r", 1.0, 2.0).pass(1.5));
    EXPECT_FALSE(Spec::range("r", 1.0, 2.0).pass(2.5));
    EXPECT_FALSE(Spec::at_least("g", 0.0).pass(nan_v));
    EXPECT_THROW((void)Spec::range("bad", 2.0, 1.0), InvalidInputError);
}

TEST(Yield, FromFlagsCountsAndCi) {
    const YieldEstimate y =
        yield_from_flags({true, true, true, false, true, true, true, true, true, true});
    EXPECT_EQ(y.samples, 10u);
    EXPECT_EQ(y.passes, 9u);
    EXPECT_DOUBLE_EQ(y.yield, 0.9);
    EXPECT_LT(y.ci_low, 0.9);
    EXPECT_GT(y.ci_high, 0.9);
    EXPECT_LE(y.ci_high, 1.0);
}

TEST(Yield, PerfectYieldCiBelowOne) {
    // 500/500 passes: the Wilson interval still cannot claim exactly 100 %.
    std::vector<bool> flags(500, true);
    const YieldEstimate y = yield_from_flags(flags);
    EXPECT_DOUBLE_EQ(y.yield, 1.0);
    EXPECT_GT(y.ci_low, 0.99);
    EXPECT_LT(y.ci_low, 1.0);
}

TEST(Yield, MatrixYieldRequiresAllSpecs) {
    const std::vector<Spec> specs = {Spec::at_least("gain", 50.0),
                                     Spec::at_least("pm", 60.0)};
    const std::vector<std::vector<double>> rows = {
        {51.0, 65.0}, // pass
        {49.0, 65.0}, // gain fails
        {51.0, 55.0}, // pm fails
        {nan_v, 65.0} // failed sim
    };
    const YieldEstimate y = estimate_yield(rows, specs);
    EXPECT_EQ(y.passes, 1u);
    EXPECT_EQ(y.samples, 4u);
}

TEST(Yield, WilsonIntervalKnownValue) {
    // p=0.5, n=100: Wilson 95% ~ [0.404, 0.596].
    const auto [lo, hi] = wilson_interval(50, 100);
    EXPECT_NEAR(lo, 0.404, 0.005);
    EXPECT_NEAR(hi, 0.596, 0.005);
}

TEST(Yield, WilsonIntervalEdgeCases) {
    // 0 samples: no evidence, the vacuous interval.
    const auto [lo0, hi0] = wilson_interval(0, 0);
    EXPECT_EQ(lo0, 0.0);
    EXPECT_EQ(hi0, 1.0);

    // 0 passes out of n: the lower edge is exactly 0, the upper edge is
    // strictly positive (0/50 cannot claim exactly 0 %).
    const auto [lo_none, hi_none] = wilson_interval(0, 50);
    EXPECT_EQ(lo_none, 0.0);
    EXPECT_GT(hi_none, 0.0);
    EXPECT_LT(hi_none, 0.15);

    // All passes: mirror image - upper edge exactly 1, lower edge < 1.
    const auto [lo_all, hi_all] = wilson_interval(50, 50);
    EXPECT_EQ(hi_all, 1.0);
    EXPECT_LT(lo_all, 1.0);
    EXPECT_GT(lo_all, 0.85);

    // Symmetry of the two one-sided cases.
    EXPECT_NEAR(lo_all, 1.0 - hi_none, 1e-12);

    // passes > samples is a caller bug, not a statistics question.
    EXPECT_THROW((void)wilson_interval(2, 1), InvalidInputError);

    // yield_from_flags on an empty population stays consistent with it.
    const YieldEstimate empty = yield_from_flags({});
    EXPECT_EQ(empty.samples, 0u);
    EXPECT_EQ(empty.yield, 0.0);
    EXPECT_EQ(empty.ci_low, 0.0);
    EXPECT_EQ(empty.ci_high, 1.0);
}

// -------------------------------------------------------------- MC runner

TEST(McRunner, DeterministicAcrossThreadCounts) {
    auto fn = [](std::size_t, Rng& rng) -> std::vector<double> {
        return {rng.gauss(10.0, 1.0), rng.uniform(0.0, 1.0)};
    };
    McConfig serial;
    serial.samples = 64;
    serial.parallel = false;
    McConfig parallel = serial;
    parallel.parallel = true;
    Rng r1(5), r2(5);
    const McResult a = run_monte_carlo(serial, r1, fn);
    const McResult b = run_monte_carlo(parallel, r2, fn);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.rows[i][0], b.rows[i][0]);
        EXPECT_DOUBLE_EQ(a.rows[i][1], b.rows[i][1]);
    }
}

TEST(McRunner, SuccessiveRunsDiffer) {
    auto fn = [](std::size_t, Rng& rng) -> std::vector<double> {
        return {rng.uniform01()};
    };
    McConfig cfg;
    cfg.samples = 8;
    Rng rng(9);
    const McResult a = run_monte_carlo(cfg, rng, fn);
    const McResult b = run_monte_carlo(cfg, rng, fn);
    EXPECT_NE(a.rows[0][0], b.rows[0][0]);
}

TEST(McRunner, TracksFailures) {
    auto fn = [](std::size_t i, Rng&) -> std::vector<double> {
        if (i % 4 == 0) return {nan_v};
        return {1.0};
    };
    McConfig cfg;
    cfg.samples = 16;
    Rng rng(1);
    const McResult r = run_monte_carlo(cfg, rng, fn);
    EXPECT_EQ(r.failed(), 4u);
    EXPECT_EQ(r.column(0).size(), 12u); // failed rows excluded
}

TEST(McRunner, ColumnSummaryGaussian) {
    auto fn = [](std::size_t, Rng& rng) -> std::vector<double> {
        return {rng.gauss(50.0, 0.1)};
    };
    McConfig cfg;
    cfg.samples = 4000;
    Rng rng(21);
    const McResult r = run_monte_carlo(cfg, rng, fn);
    const Summary s = r.column_summary(0);
    EXPECT_NEAR(s.mean, 50.0, 0.02);
    EXPECT_NEAR(s.stddev, 0.1, 0.01);
    const VariationMetrics v = r.column_variation(0);
    EXPECT_NEAR(v.delta_3sigma_pct, 3.0 * 0.1 / 50.0 * 100.0, 0.08);
}

TEST(McRunner, HandBuiltResultAutoFinalizes) {
    // Regression: a hand-built McResult (rows filled directly, finalize()
    // never called) used to silently fall back to per-row scans with a
    // stale `failed` count of 0. The accessors now finalise on first touch.
    McResult hand_built;
    hand_built.rows = {{1.0, 2.0}, {nan_v, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(hand_built.failed(), 1u);
    ASSERT_EQ(hand_built.failure_mask().size(), 3u);
    EXPECT_EQ(hand_built.failure_mask()[1], 1);
    EXPECT_EQ(hand_built.column(0).size(), 2u); // failed row excluded
    EXPECT_EQ(hand_built.column(1).size(), 2u);

    // Mutating rows requires an explicit re-finalize, per the contract.
    hand_built.rows.push_back({nan_v, nan_v});
    hand_built.finalize();
    EXPECT_EQ(hand_built.failed(), 2u);
    EXPECT_EQ(hand_built.failure_mask().size(), 4u);
}

TEST(McRunner, RejectsZeroSamples) {
    McConfig cfg;
    cfg.samples = 0;
    Rng rng(1);
    EXPECT_THROW(
        (void)run_monte_carlo(cfg, rng,
                              [](std::size_t, Rng&) -> std::vector<double> {
                                  return {0.0};
                              }),
        InvalidInputError);
}

// -------------------------------------------------------------------- LHS

TEST(Lhs, EveryStratumHitOncePerDimension) {
    Rng rng(3);
    const std::size_t n = 32;
    const auto s = latin_hypercube(n, 3, rng);
    ASSERT_EQ(s.size(), n);
    for (std::size_t d = 0; d < 3; ++d) {
        std::set<std::size_t> strata;
        for (const auto& row : s) {
            EXPECT_GE(row[d], 0.0);
            EXPECT_LT(row[d], 1.0);
            strata.insert(static_cast<std::size_t>(row[d] * n));
        }
        EXPECT_EQ(strata.size(), n); // one sample per stratum
    }
}

TEST(Lhs, GaussianVariantHasStandardMoments) {
    Rng rng(5);
    const auto s = latin_hypercube_gaussian(2000, 1, rng);
    double sum = 0.0, sum2 = 0.0;
    for (const auto& row : s) {
        sum += row[0];
        sum2 += row[0] * row[0];
    }
    EXPECT_NEAR(sum / 2000.0, 0.0, 0.05);
    EXPECT_NEAR(sum2 / 2000.0, 1.0, 0.08);
}

TEST(Lhs, InverseNormalCdfKnownValues) {
    EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
    EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(inverse_normal_cdf(0.8413447), 1.0, 1e-4);
    EXPECT_THROW((void)inverse_normal_cdf(0.0), InvalidInputError);
    EXPECT_THROW((void)inverse_normal_cdf(1.0), InvalidInputError);
}

TEST(Lhs, VarianceReductionOnSmoothIntegrand) {
    // Estimating E[x] over [0,1): LHS variance should beat plain MC.
    const std::size_t n = 64;
    const int trials = 200;
    double var_mc = 0.0, var_lhs = 0.0;
    Rng rng(77);
    for (int t = 0; t < trials; ++t) {
        double mean_mc = 0.0;
        for (std::size_t i = 0; i < n; ++i) mean_mc += rng.uniform01();
        mean_mc /= n;
        var_mc += (mean_mc - 0.5) * (mean_mc - 0.5);

        const auto s = latin_hypercube(n, 1, rng);
        double mean_lhs = 0.0;
        for (const auto& row : s) mean_lhs += row[0];
        mean_lhs /= n;
        var_lhs += (mean_lhs - 0.5) * (mean_lhs - 0.5);
    }
    EXPECT_LT(var_lhs, var_mc / 10.0);
}

} // namespace
