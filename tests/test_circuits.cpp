// Tests for the benchmark circuits: symmetrical OTA (paper Fig. 5) and the
// 2nd-order low-pass filter (paper Fig. 9), including the physical
// behaviours the paper's optimisation relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/filter.hpp"
#include "circuits/filter_problem.hpp"
#include "circuits/ota.hpp"
#include "circuits/ota_problem.hpp"
#include "process/sampler.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::circuits;

// ------------------------------------------------------------------- OTA

TEST(OtaSizing, VectorRoundTrip) {
    OtaSizing s;
    s.w1 = 11e-6;
    s.l3 = 3e-6;
    const OtaSizing back = OtaSizing::from_vector(s.to_vector());
    EXPECT_DOUBLE_EQ(back.w1, 11e-6);
    EXPECT_DOUBLE_EQ(back.l3, 3e-6);
    EXPECT_THROW((void)OtaSizing::from_vector({1.0, 2.0}), InvalidInputError);
}

TEST(OtaSizing, SpecsMatchPaperTable1) {
    const auto specs = OtaSizing::parameter_specs();
    ASSERT_EQ(specs.size(), 8u);
    for (std::size_t i = 0; i < 8; i += 2) {
        EXPECT_DOUBLE_EQ(specs[i].lo, 10e-6);  // W range 10-60 um
        EXPECT_DOUBLE_EQ(specs[i].hi, 60e-6);
        EXPECT_DOUBLE_EQ(specs[i + 1].lo, 0.35e-6); // L range 0.35-4 um
        EXPECT_DOUBLE_EQ(specs[i + 1].hi, 4e-6);
    }
}

TEST(Ota, TestbenchHasTenTransistors) {
    const spice::Circuit ckt = build_ota_testbench(OtaSizing{}, OtaConfig{});
    const auto geoms = ckt.mos_geometries();
    EXPECT_EQ(geoms.size(), 10u);
}

TEST(Ota, AllTransistorsSaturatedAtNominal) {
    const OtaEvaluator ev;
    const auto regions = ev.op_regions(OtaSizing{});
    ASSERT_EQ(regions.size(), 10u);
    for (const auto& [name, region] : regions)
        EXPECT_EQ(region, spice::Mosfet::Region::saturation)
            << name << " is " << spice::to_string(region);
}

TEST(Ota, NominalPerformanceInPaperBallpark) {
    const OtaEvaluator ev;
    const OtaPerformance perf = ev.measure(OtaSizing{});
    ASSERT_TRUE(perf.valid) << perf.failure;
    // Paper section 4: gain ~ 50 dB, PM ~ 75 deg on the front.
    EXPECT_GT(perf.gain_db, 40.0);
    EXPECT_LT(perf.gain_db, 70.0);
    EXPECT_GT(perf.pm_deg, 45.0);
    EXPECT_LT(perf.pm_deg, 95.0);
}

TEST(Ota, MirrorRatioTradesPhaseMarginForBandwidth) {
    // Larger W1 (bigger B) must cost phase margin - the trade-off that
    // creates the paper's Pareto front.
    const OtaEvaluator ev;
    OtaSizing small;
    small.w1 = 12e-6;
    OtaSizing large;
    large.w1 = 58e-6;
    const auto ps = ev.measure(small);
    const auto pl = ev.measure(large);
    ASSERT_TRUE(ps.valid && pl.valid);
    EXPECT_GT(ps.pm_deg, pl.pm_deg);
    EXPECT_GT(pl.bode.gbw, ps.bode.gbw);
}

TEST(Ota, LongerMirrorLengthRaisesGain) {
    // Longer L1 reduces channel-length modulation at the output -> more gain.
    const OtaEvaluator ev;
    OtaSizing short_l;
    short_l.l1 = 0.5e-6;
    OtaSizing long_l;
    long_l.l1 = 3.5e-6;
    const auto p_short = ev.measure(short_l);
    const auto p_long = ev.measure(long_l);
    ASSERT_TRUE(p_short.valid && p_long.valid);
    EXPECT_GT(p_long.gain_db, p_short.gain_db);
}

TEST(Ota, AcResponseRollsOff) {
    const OtaEvaluator ev;
    const auto resp = ev.ac_response(OtaSizing{});
    ASSERT_GT(resp.freqs.size(), 50u);
    const double dc_mag = std::abs(resp.h.front());
    const double hf_mag = std::abs(resp.h.back());
    EXPECT_GT(dc_mag, 100.0); // > 40 dB
    EXPECT_LT(hf_mag, dc_mag / 1000.0);
}

TEST(Ota, ProcessRealizationShiftsPerformance) {
    const OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    const auto nominal = ev.measure(OtaSizing{});
    // A strong corner must move the measured gain.
    const auto ss = sampler.corner(process::Corner::ss);
    const auto shifted = ev.measure(OtaSizing{}, ss);
    ASSERT_TRUE(nominal.valid && shifted.valid);
    EXPECT_NE(nominal.gain_db, shifted.gain_db);
}

TEST(OtaProblem, EvaluateMatchesEvaluator) {
    const OtaProblem problem;
    EXPECT_EQ(problem.parameters().size(), 8u);
    ASSERT_EQ(problem.objectives().size(), 2u);
    EXPECT_EQ(problem.objectives()[0].name, "gain_db");
    EXPECT_EQ(problem.objectives()[0].dir, moo::Direction::maximize);

    const OtaSizing s;
    const auto objs = problem.evaluate(s.to_vector());
    const auto direct = problem.evaluator().measure(s);
    ASSERT_TRUE(direct.valid);
    EXPECT_DOUBLE_EQ(objs[0], direct.gain_db);
    EXPECT_DOUBLE_EQ(objs[1], direct.pm_deg);
}

// ---------------------------------------------------------------- filter

TEST(FilterSizing, VectorRoundTripAndSpecs) {
    FilterSizing s{10e-12, 20e-12, 30e-12};
    const FilterSizing back = FilterSizing::from_vector(s.to_vector());
    EXPECT_DOUBLE_EQ(back.c2, 20e-12);
    EXPECT_EQ(FilterSizing::parameter_specs().size(), 3u);
}

TEST(Filter, BehaviouralResponseIsLowpass) {
    const FilterEvaluator ev{FilterConfig{}, FilterSpecMask{}};
    const auto perf = ev.measure(FilterSizing{}, OtaModelKind::behavioural);
    ASSERT_TRUE(perf.valid) << perf.failure;
    EXPECT_NEAR(perf.passband_gain_db, 0.0, 1.0); // unity-gain topology
    EXPECT_FALSE(std::isnan(perf.fc));
    EXPECT_GT(perf.stopband_atten_db, 10.0);
}

TEST(Filter, TransistorResponseIsLowpass) {
    const FilterEvaluator ev{FilterConfig{}, FilterSpecMask{}};
    const auto perf = ev.measure(FilterSizing{}, OtaModelKind::transistor);
    ASSERT_TRUE(perf.valid) << perf.failure;
    EXPECT_NEAR(perf.passband_gain_db, 0.0, 1.5);
    EXPECT_FALSE(std::isnan(perf.fc));
}

TEST(Filter, BehaviouralAndTransistorCutoffsAgreeRoughly) {
    // The macromodel should track the transistor filter in the passband
    // region (divergence appears only at high frequency, cf. Fig. 8) -
    // provided the macromodel is derived from that transistor OTA, which
    // is exactly what the paper's flow does.
    FilterConfig cfg;
    const OtaEvaluator ota_ev(cfg.ota_config);
    const auto ota_perf = ota_ev.measure(cfg.ota_sizing);
    ASSERT_TRUE(ota_perf.valid);
    cfg.ota_spec.gain_db = ota_perf.gain_db;
    // ro forms the dominant pole against the testbench load (see
    // BehaviouralModel::macromodel_spec); intrinsic pole out of band.
    cfg.ota_spec.rout = 1.0 / (2.0 * 3.14159265358979 * ota_perf.bode.f3db *
                               cfg.ota_config.c_load);
    cfg.ota_spec.f3db = 1e9;

    const FilterEvaluator ev{cfg, FilterSpecMask{}};
    const FilterSizing s{48e-12, 24e-12, 8e-12};
    const auto behav = ev.measure(s, OtaModelKind::behavioural);
    const auto trans = ev.measure(s, OtaModelKind::transistor);
    ASSERT_TRUE(behav.valid && trans.valid);
    EXPECT_NEAR(behav.fc, trans.fc, trans.fc * 0.35);
}

TEST(Filter, SmallerCapsRaiseCutoff) {
    const FilterEvaluator ev{FilterConfig{}, FilterSpecMask{}};
    const auto big = ev.measure(FilterSizing{40e-12, 20e-12, 10e-12},
                                OtaModelKind::behavioural);
    const auto small = ev.measure(FilterSizing{8e-12, 4e-12, 10e-12},
                                  OtaModelKind::behavioural);
    ASSERT_TRUE(big.valid && small.valid);
    EXPECT_GT(small.fc, big.fc);
}

TEST(Filter, SpecMaskLogic) {
    FilterSpecMask mask;
    FilterPerformance perf;
    perf.valid = true;
    perf.fc = mask.fc_target;
    perf.worst_passband_dev_db = 0.2;
    perf.stopband_atten_db = mask.min_stop_atten_db + 5.0;
    EXPECT_TRUE(perf.meets(mask));
    perf.fc = mask.fc_target * 2.0;
    EXPECT_FALSE(perf.meets(mask));
    perf.fc = mask.fc_target;
    perf.stopband_atten_db = mask.min_stop_atten_db - 1.0;
    EXPECT_FALSE(perf.meets(mask));
    perf.valid = false;
    EXPECT_FALSE(perf.meets(mask));
}

TEST(FilterProblem, ObjectivesAreMinimised) {
    FilterProblem problem{FilterConfig{}, FilterSpecMask{}};
    EXPECT_EQ(problem.parameters().size(), 3u);
    EXPECT_EQ(problem.objectives()[0].dir, moo::Direction::minimize);
    const auto objs = problem.evaluate(FilterSizing{}.to_vector());
    ASSERT_EQ(objs.size(), 2u);
    EXPECT_GE(objs[0], 0.0); // relative cutoff error
}

TEST(Filter, BehaviouralYieldHighForCenteredDesign) {
    // A design tuned to the mask centre should survive small OTA variation.
    FilterConfig cfg;
    FilterSpecMask mask;
    const FilterEvaluator ev{cfg, mask};
    // Caps that put fc near 100 kHz for R = 47k (the problem's own
    // physics: sqrt(c1*c2) ~ 1/(2 pi R fc) ~ 34 pF with c1/c2 = 2).
    const FilterSizing sizing{48e-12, 24e-12, 8e-12};
    const auto perf = ev.measure(sizing, OtaModelKind::behavioural);
    ASSERT_TRUE(perf.valid);
    if (perf.meets(mask)) {
        FilterVariation var;
        Rng rng(5);
        const auto yield = filter_yield_behavioural(ev, sizing, var, 60, rng);
        EXPECT_GT(yield.yield, 0.9);
    }
}

} // namespace
