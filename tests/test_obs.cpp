// Observability stack: metrics registry arithmetic, snapshot/JSON
// well-formedness, span tracing (nesting, drain ordering, Chrome export),
// multi-threaded counter correctness, and the contract everything else
// leans on - a traced flow run is bit-identical to an untraced one.

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ypm;

// ------------------------------------------------- minimal JSON validator
//
// Recursive-descent checker for the subset the exporters emit (objects,
// arrays, strings with escapes, numbers, booleans). Rejecting trailing
// garbage makes it strict enough to catch missing commas/braces.

class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    [[nodiscard]] bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool object() {
        ++pos_; // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array() {
        ++pos_; // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                if (pos_ + 1 >= s_.size()) return false;
                pos_ += 2;
                continue;
            }
            ++pos_;
        }
        if (pos_ >= s_.size()) return false;
        ++pos_; // closing quote
        return true;
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char* word) {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }

    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    [[nodiscard]] char peek() const {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

// ----------------------------------------------------------- instruments

TEST(Metrics, CounterAddsAndResets) {
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeKeepsLastValue) {
    obs::Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(0.25);
    g.set(0.75);
    EXPECT_EQ(g.value(), 0.75);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketsObservations) {
    obs::Histogram h({1.0, 10.0, 100.0});
    h.observe(0.5);   // <= 1       -> bucket 0
    h.observe(1.0);   // <= 1       -> bucket 0 (first matching edge wins)
    h.observe(5.0);   // <= 10      -> bucket 1
    h.observe(100.0); // <= 100     -> bucket 2
    h.observe(1e6);   // overflow   -> bucket 3
    EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(Metrics, HistogramRejectsBadEdges) {
    EXPECT_THROW(obs::Histogram({}), InvalidInputError);
    EXPECT_THROW(obs::Histogram({1.0, 1.0}), InvalidInputError);
    EXPECT_THROW(obs::Histogram({2.0, 1.0}), InvalidInputError);
}

// -------------------------------------------------------------- registry

TEST(MetricsRegistry, SameNameSameInstrument) {
    obs::MetricsRegistry reg;
    obs::Counter& a = reg.counter("hits");
    obs::Counter& b = reg.counter("hits");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, KindConflictsThrow) {
    obs::MetricsRegistry reg;
    (void)reg.counter("x");
    EXPECT_THROW((void)reg.gauge("x"), InvalidInputError);
    EXPECT_THROW((void)reg.histogram("x", {1.0}), InvalidInputError);
    (void)reg.histogram("h", {1.0, 2.0});
    EXPECT_THROW((void)reg.histogram("h", {1.0, 3.0}), InvalidInputError);
    (void)reg.histogram("h", {1.0, 2.0}); // identical edges: fine
}

TEST(MetricsRegistry, SnapshotIsSortedAndQueryable) {
    obs::MetricsRegistry reg;
    reg.counter("b.count").add(2);
    reg.counter("a.count").add(1);
    reg.gauge("rate").set(0.5);
    reg.histogram("lat", {1.0, 2.0}).observe(1.5);

    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "a.count"); // map order == sorted
    EXPECT_EQ(snap.counters[1].name, "b.count");
    EXPECT_EQ(snap.counter_value("b.count"), 2u);
    EXPECT_EQ(snap.counter_value("missing"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauge_value("rate"), 0.5);
    EXPECT_DOUBLE_EQ(snap.gauge_value("missing"), 0.0);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].buckets,
              (std::vector<std::uint64_t>{0, 1, 0}));
}

TEST(MetricsRegistry, ResetZeroesButKeepsNames) {
    obs::MetricsRegistry reg;
    reg.counter("n").add(7);
    reg.gauge("g").set(3.0);
    reg.histogram("h", {1.0}).observe(0.5);
    reg.reset();
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter_value("n"), 0u);
    EXPECT_EQ(snap.gauge_value("g"), 0.0);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormed) {
    obs::MetricsRegistry reg;
    reg.counter("engine.requests").add(12);
    reg.gauge("cache.hit_rate").set(0.875);
    reg.histogram("pool.task_seconds", {1e-3, 1e-2}).observe(5e-3);
    const std::string json = reg.snapshot().to_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"engine.requests\":12"), std::string::npos) << json;
    EXPECT_NE(json.find("cache.hit_rate"), std::string::npos);
    EXPECT_NE(json.find("pool.task_seconds"), std::string::npos);
}

TEST(MetricsRegistry, CountersExactUnderThreadPoolContention) {
    obs::MetricsRegistry reg;
    obs::Counter& hits = reg.counter("mt.hits");
    obs::Histogram& h = reg.histogram("mt.lat", {0.5});
    constexpr std::size_t n = 10000;
    ThreadPool pool(4);
    pool.parallel_for(n, [&](std::size_t i) {
        hits.add();
        h.observe(i % 2 == 0 ? 0.25 : 1.0);
    });
    EXPECT_EQ(hits.value(), n);
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{n / 2, n / 2}));
}

// ---------------------------------------------------------------- tracer

/// Enables tracing for one scope and guarantees the global buffers are
/// empty on entry and disabled+empty on exit, so tests cannot leak spans
/// into each other (the tracer is process-wide by design).
class ScopedTracing {
public:
    ScopedTracing() {
        obs::Tracer::global().clear();
        obs::Tracer::set_enabled(true);
    }
    ~ScopedTracing() {
        obs::Tracer::set_enabled(false);
        obs::Tracer::global().clear();
    }
};

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
    ASSERT_FALSE(obs::Tracer::enabled());
    {
        obs::Span span("ignored", "test");
        span.arg("x", 1.0);
    }
    obs::Tracer::instant("also_ignored", "test");
    EXPECT_TRUE(obs::Tracer::global().drain().empty());
}

TEST(Tracer, SpansNestAndDrainSorted) {
    const ScopedTracing tracing;
    {
        obs::Span outer("outer", "test");
        outer.arg("level", 0.0);
        {
            obs::Span inner("inner", "test");
            inner.arg("level", 1.0);
        }
    }
    obs::Tracer::instant("tick", "test", {{"k", 3.0}});

    const auto events = obs::Tracer::global().drain();
    ASSERT_EQ(events.size(), 3u);
    // Sorted by start time with longer spans first: parent before child.
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_STREQ(events[2].name, "tick");
    EXPECT_TRUE(events[2].instant);

    // Containment: the inner span lies inside the outer one.
    const auto& outer = events[0];
    const auto& inner = events[1];
    EXPECT_LE(outer.start_ns, inner.start_ns);
    EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);

    ASSERT_EQ(outer.args.size(), 1u);
    EXPECT_STREQ(outer.args[0].key, "level");
    EXPECT_EQ(outer.args[0].value, 0.0);

    // drain() moved everything out.
    EXPECT_TRUE(obs::Tracer::global().drain().empty());
}

TEST(Tracer, WorkerThreadEventsGetDistinctTids) {
    const ScopedTracing tracing;
    ThreadPool pool(2);
    pool.parallel_for(8, [](std::size_t) {
        const obs::Span span("work", "test");
    });
    {
        const obs::Span span("main", "test");
    }
    const auto events = obs::Tracer::global().drain();
    ASSERT_GE(events.size(), 9u);
    std::size_t main_tid_events = 0;
    for (const auto& e : events)
        if (std::strcmp(e.name, "main") == 0) ++main_tid_events;
    EXPECT_EQ(main_tid_events, 1u);
}

TEST(Tracer, ChromeJsonIsWellFormedAndCarriesMetrics) {
    const ScopedTracing tracing;
    {
        obs::Span span("engine.submit", "engine");
        span.arg("items", 17.0);
    }
    obs::Tracer::instant("yield.chunk", "yield", {{"ess", 12.5}});
    const auto events = obs::Tracer::global().drain();

    obs::MetricsRegistry reg;
    reg.counter("engine.requests").add(17);
    const auto snap = reg.snapshot();

    const std::string json = obs::chrome_trace_json(events, &snap);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"engine.submit\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"engine.requests\":17"), std::string::npos);
}

TEST(Tracer, SummaryTableAggregatesByName) {
    const ScopedTracing tracing;
    for (int i = 0; i < 3; ++i) {
        const obs::Span span("repeated", "test");
    }
    const auto events = obs::Tracer::global().drain();
    const std::string table = obs::trace_summary_table(events);
    EXPECT_NE(table.find("repeated"), std::string::npos);
    EXPECT_NE(table.find("3"), std::string::npos); // count column
}

// ------------------------------------------- traced == untraced, end to end

core::FlowConfig tiny_flow_config() {
    core::FlowConfig cfg;
    cfg.ga.population = 12;
    cfg.ga.generations = 6;
    cfg.mc_samples = 24;
    cfg.max_mc_points = 6;
    cfg.seed = 99;
    cfg.yield_specs = {mc::Spec::at_least("gain_db", 30.0),
                       mc::Spec::at_least("pm_deg", 15.0)};
    cfg.yield_sequential.pilot_samples = 16;
    cfg.yield_sequential.chunk_samples = 16;
    cfg.yield_sequential.max_samples = 32;
    cfg.yield_sequential.min_samples = 16;
    return cfg;
}

void expect_bit_identical(const core::FlowResult& a, const core::FlowResult& b) {
    auto same_bits = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof(double)) == 0;
    };
    ASSERT_EQ(a.front.size(), b.front.size());
    for (std::size_t i = 0; i < a.front.size(); ++i) {
        const auto& p = a.front[i];
        const auto& q = b.front[i];
        EXPECT_EQ(p.design_id, q.design_id) << i;
        EXPECT_TRUE(same_bits(p.gain_db, q.gain_db)) << i;
        EXPECT_TRUE(same_bits(p.pm_deg, q.pm_deg)) << i;
        EXPECT_TRUE(same_bits(p.dgain_pct, q.dgain_pct)) << i;
        EXPECT_TRUE(same_bits(p.dpm_pct, q.dpm_pct)) << i;
        EXPECT_TRUE(same_bits(p.f3db, q.f3db)) << i;
        EXPECT_TRUE(same_bits(p.gbw, q.gbw)) << i;
        EXPECT_EQ(p.mc_failures, q.mc_failures) << i;
    }
    ASSERT_EQ(a.yields.size(), b.yields.size());
    for (std::size_t i = 0; i < a.yields.size(); ++i) {
        const auto& p = a.yields[i].result;
        const auto& q = b.yields[i].result;
        EXPECT_EQ(a.yields[i].design_id, b.yields[i].design_id) << i;
        EXPECT_TRUE(same_bits(p.estimate.yield, q.estimate.yield)) << i;
        EXPECT_TRUE(same_bits(p.estimate.ess, q.estimate.ess)) << i;
        EXPECT_EQ(p.samples_used, q.samples_used) << i;
        EXPECT_EQ(p.pilot_samples, q.pilot_samples) << i;
        EXPECT_EQ(p.trajectory, q.trajectory) << i;
    }
    EXPECT_EQ(a.timings.moo_evaluations, b.timings.moo_evaluations);
    EXPECT_EQ(a.timings.mc_evaluations, b.timings.mc_evaluations);
    EXPECT_EQ(a.timings.engine.requests, b.timings.engine.requests);
    EXPECT_EQ(a.timings.engine.evaluations, b.timings.engine.evaluations);
    EXPECT_EQ(a.timings.engine.cache_hits, b.timings.engine.cache_hits);
    EXPECT_EQ(a.timings.engine.failures, b.timings.engine.failures);
}

TEST(TracedFlow, BitIdenticalToUntracedAndWritesValidTrace) {
    namespace fs = std::filesystem;
    const std::string trace_path =
        (fs::temp_directory_path() / "ypm_test_obs_trace.json").string();

    const circuits::OtaConfig ota;
    const core::YieldFlow plain(ota, tiny_flow_config());
    const core::FlowResult untraced = plain.run();

    core::FlowConfig traced_cfg = tiny_flow_config();
    traced_cfg.trace_path = trace_path;
    const core::YieldFlow traced_flow(ota, traced_cfg);
    const core::FlowResult traced = traced_flow.run();

    expect_bit_identical(untraced, traced);

    // run() turned tracing back off.
    EXPECT_FALSE(obs::Tracer::enabled());

    // The trace artifact is valid JSON and contains the expected spans.
    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good());
    const std::string json((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    EXPECT_TRUE(JsonChecker(json).valid());
    for (const char* name :
         {"flow.run", "flow.moo", "flow.mc", "flow.yield", "engine.submit",
          "engine.batch", "engine.kernel", "yield.chunk"})
        EXPECT_NE(json.find(std::string("\"") + name + "\""),
                  std::string::npos)
            << name;
    fs::remove(trace_path);
}

} // namespace
