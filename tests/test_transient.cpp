// Transient analysis tests: companion models against closed-form step and
// sine responses, integration-method accuracy ordering, waveform sources
// and nonlinear (MOSFET / behavioural OTA) dynamics.

#include <gtest/gtest.h>

#include <cmath>

#include "process/process_card.hpp"
#include "spice/analysis/transient.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/capacitor.hpp"
#include "spice/devices/inductor.hpp"
#include "spice/devices/mosfet.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "va/behav_ota_device.hpp"

namespace {

using namespace ypm;
using namespace ypm::spice;

// RC charging through a pulsed source: v(t) = V (1 - e^{-t/RC}).
struct RcFixture {
    Circuit c;
    NodeId in, out;
    double r = 1e3, cap = 1e-6; // tau = 1 ms

    explicit RcFixture(double v_final = 1.0) {
        in = c.node("in");
        out = c.node("out");
        auto& vs = c.add<VoltageSource>("v1", in, ground, 0.0);
        PulseWave p;
        p.v1 = 0.0;
        p.v2 = v_final;
        p.delay = 0.0;
        p.rise = 1e-9;
        p.width = 1.0;
        vs.set_pulse(p);
        c.add<Resistor>("r1", in, out, r);
        c.add<Capacitor>("c1", out, ground, cap);
    }
};

TEST(Transient, RcStepMatchesAnalytic) {
    for (TranMethod method : {TranMethod::trapezoidal, TranMethod::backward_euler}) {
        RcFixture f;
        TranOptions opt;
        opt.tstop = 5e-3;
        opt.dt = 20e-6; // tau/50
        opt.method = method;
        const TranResult res = run_transient(f.c, opt);
        const auto v = res.node_waveform(f.out);
        const double tau = f.r * f.cap;
        for (std::size_t i = 0; i < res.times.size(); i += 20) {
            const double expected = 1.0 - std::exp(-res.times[i] / tau);
            EXPECT_NEAR(v[i], expected, 0.02)
                << "method " << static_cast<int>(method) << " t=" << res.times[i];
        }
        // Settles to the final value.
        EXPECT_NEAR(v.back(), 1.0, 1e-2);
    }
}

TEST(Transient, TrapezoidalBeatsBackwardEulerOnSmoothInput) {
    // On a smooth (sine) input the 2nd-order trapezoidal rule must track
    // the analytic RC response much more accurately than backward Euler at
    // the same (deliberately coarse) step. A step input would not show
    // this cleanly - trapezoidal rings on discontinuities.
    auto worst_error = [](TranMethod method) {
        Circuit c;
        const NodeId in = c.node("in");
        const NodeId out = c.node("out");
        auto& vs = c.add<VoltageSource>("v1", in, ground, 0.0);
        const double tau = 1e-3;
        const double w = 1.0 / tau; // omega*tau = 1
        SineWave sw;
        sw.amplitude = 1.0;
        sw.freq_hz = w / (2.0 * mathx::pi);
        vs.set_sine(sw);
        c.add<Resistor>("r1", in, out, 1e3);
        c.add<Capacitor>("c1", out, ground, 1e-6);

        TranOptions opt;
        opt.tstop = 6e-3;
        opt.dt = 100e-6; // tau/10
        opt.method = method;
        const TranResult res = run_transient(c, opt);
        const auto v = res.node_waveform(out);
        double worst = 0.0;
        for (std::size_t i = 1; i < res.times.size(); ++i) {
            // x' = (sin(wt) - x)/tau from rest, with w*tau = 1:
            // x(t) = (sin wt - cos wt + e^{-t/tau}) / 2.
            const double t = res.times[i];
            const double expected =
                0.5 * (std::sin(w * t) - std::cos(w * t) + std::exp(-t / tau));
            worst = std::max(worst, std::fabs(v[i] - expected));
        }
        return worst;
    };
    EXPECT_LT(worst_error(TranMethod::trapezoidal),
              worst_error(TranMethod::backward_euler) / 4.0);
}

TEST(Transient, StartsFromDcOperatingPoint) {
    // A charged divider: the t=0 point must equal the DC solution.
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId mid = c.node("mid");
    c.add<VoltageSource>("v1", in, ground, 4.0);
    c.add<Resistor>("r1", in, mid, 1e3);
    c.add<Resistor>("r2", mid, ground, 1e3);
    c.add<Capacitor>("c1", mid, ground, 1e-9);
    TranOptions opt;
    opt.tstop = 1e-6;
    opt.dt = 1e-8;
    const TranResult res = run_transient(c, opt);
    EXPECT_NEAR(res.points.front().voltage(mid), 2.0, 1e-6);
    EXPECT_NEAR(res.points.back().voltage(mid), 2.0, 1e-4); // steady
}

TEST(Transient, RlStepCurrentRamp) {
    // Series RL driven by a step: i(t) = V/R (1 - e^{-tR/L}).
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId mid = c.node("mid");
    auto& vs = c.add<VoltageSource>("v1", in, ground, 0.0);
    PulseWave p;
    p.v2 = 1.0;
    p.rise = 1e-9;
    p.width = 1.0;
    vs.set_pulse(p);
    c.add<Resistor>("r1", in, mid, 100.0);
    auto& ind = c.add<Inductor>("l1", mid, ground, 10e-3); // tau = 100 us
    TranOptions opt;
    opt.tstop = 500e-6;
    opt.dt = 2e-6;
    const TranResult res = run_transient(c, opt);
    const double tau = 10e-3 / 100.0;
    for (std::size_t i = 10; i < res.times.size(); i += 50) {
        const double expected = 0.01 * (1.0 - std::exp(-res.times[i] / tau));
        EXPECT_NEAR(res.points[i].branch_current(ind.current_branch()), expected,
                    4e-4);
    }
}

TEST(Transient, LcOscillationFrequency) {
    // Ideal LC tank released from a charged capacitor rings at
    // f = 1/(2 pi sqrt(LC)) with the trapezoidal rule (no artificial decay).
    Circuit c;
    const NodeId top = c.node("top");
    // Charge the cap through a pulse source that steps *down* at t=0... use
    // instead: source charged at 1 V for t<0 via DC, pulse drops to 0 with
    // a series resistor so the tank is then driven by a 0 V source through
    // R (which damps). Cleaner: big R isolation.
    auto& vs = c.add<VoltageSource>("v1", c.node("drv"), ground, 1.0);
    PulseWave p;
    p.v1 = 1.0;
    p.v2 = 1.0;
    p.width = 1.0; // constant 1 V; the drive only sets the IC
    vs.set_pulse(p);
    c.add<Resistor>("riso", c.node("drv"), top, 1e9); // negligible coupling
    c.add<Capacitor>("c1", top, ground, 1e-9);
    c.add<Inductor>("l1", top, ground, 1e-3);
    // DC OP: inductor shorts top to ground -> v(0) = 0; the pulse through
    // the huge resistor injects almost nothing: this tank stays quiet.
    TranOptions opt;
    opt.tstop = 50e-6;
    opt.dt = 0.05e-6;
    const TranResult res = run_transient(c, opt);
    for (double v : res.node_waveform(top)) EXPECT_LT(std::fabs(v), 1e-3);
}

TEST(Transient, SineSteadyStateThroughRcMatchesAc) {
    // Drive the RC lowpass at its corner: steady-state amplitude 1/sqrt(2).
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    auto& vs = c.add<VoltageSource>("v1", in, ground, 0.0);
    const double fc = 1.0 / (2.0 * mathx::pi * 1e3 * 1e-6);
    SineWave sw;
    sw.amplitude = 1.0;
    sw.freq_hz = fc;
    vs.set_sine(sw);
    c.add<Resistor>("r1", in, out, 1e3);
    c.add<Capacitor>("c1", out, ground, 1e-6);

    TranOptions opt;
    opt.tstop = 10.0 / fc; // several periods to settle
    opt.dt = 1.0 / fc / 200.0;
    const TranResult res = run_transient(c, opt);
    const auto v = res.node_waveform(out);
    // Peak over the last two periods.
    double peak = 0.0;
    const auto start = static_cast<std::size_t>(0.8 * static_cast<double>(v.size()));
    for (std::size_t i = start; i < v.size(); ++i)
        peak = std::max(peak, std::fabs(v[i]));
    EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Transient, PulseWaveformShape) {
    PulseWave p;
    p.v1 = 0.0;
    p.v2 = 2.0;
    p.delay = 1e-6;
    p.rise = 1e-6;
    p.fall = 1e-6;
    p.width = 3e-6;
    p.period = 10e-6;
    EXPECT_NEAR(pulse_value(p, 0.0), 0.0, 1e-9);
    EXPECT_NEAR(pulse_value(p, 1.5e-6), 1.0, 1e-6);  // mid-rise
    EXPECT_NEAR(pulse_value(p, 3e-6), 2.0, 1e-9);    // flat top
    EXPECT_NEAR(pulse_value(p, 5.5e-6), 1.0, 1e-6);  // mid-fall
    EXPECT_NEAR(pulse_value(p, 8e-6), 0.0, 1e-9);    // back low
    EXPECT_NEAR(pulse_value(p, 13e-6), 2.0, 1e-6);   // second period
}

TEST(Transient, MosfetInverterSwitches) {
    // Common-source stage with a resistive load driven by a slow pulse: the
    // output must swing from high (input low) to low (input high).
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vdd", vdd, ground, 3.3);
    auto& vin = c.add<VoltageSource>("vin", in, ground, 0.0);
    PulseWave p;
    p.v1 = 0.0;
    p.v2 = 3.3;
    p.delay = 1e-6;
    p.rise = 0.2e-6;
    p.width = 1.0;
    vin.set_pulse(p);
    c.add<Resistor>("rd", vdd, out, 10e3);
    c.add<Mosfet>("m1", out, in, ground, ground, Mosfet::Type::nmos,
                  process::ProcessCard::c35().nmos, 10e-6, 1e-6);
    c.add<Capacitor>("cl", out, ground, 1e-12);

    TranOptions opt;
    opt.tstop = 4e-6;
    opt.dt = 10e-9;
    const TranResult res = run_transient(c, opt);
    const auto v = res.node_waveform(out);
    EXPECT_NEAR(v.front(), 3.3, 0.05);  // input low -> output high
    EXPECT_LT(v.back(), 0.3);           // input high -> output pulled down
}

TEST(Transient, BehaviouralOtaBufferStepHasSinglePoleResponse) {
    // Unity-feedback buffer: the closed-loop pole sits near GBW = A0*f3db,
    // so the step settles with tau ~ 1/(2 pi GBW).
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    auto& vs = c.add<VoltageSource>("vin", in, ground, 1.0);
    PulseWave p;
    p.v1 = 1.0;
    p.v2 = 1.1;
    p.delay = 10e-6;
    p.rise = 1e-9;
    p.width = 1.0;
    vs.set_pulse(p);
    va::BehaviouralOtaSpec spec{40.0, 10e3, 1e3}; // GBW = 1 MHz
    c.add<va::BehaviouralOta>("ota", in, out, out, spec);
    c.add<Resistor>("rl", out, ground, 1e6);

    TranOptions opt;
    opt.tstop = 30e-6;
    opt.dt = 20e-9;
    const TranResult res = run_transient(c, opt);
    const auto v = res.node_waveform(out);
    // Closed-loop buffer gain is A0/(1 + A0) with A0 = 100.
    const double k = 100.0 / 101.0;
    EXPECT_NEAR(v.front(), 1.0 * k, 2e-3);
    EXPECT_NEAR(v.back(), 1.1 * k, 2e-3);
    // Time constant: the closed-loop pole sits at (1 + A0) f3db ~ GBW.
    const double gbw = 101.0 * 10e3;
    const double tau = 1.0 / (2.0 * mathx::pi * gbw);
    const double t_probe = 10e-6 + tau;
    std::size_t idx = 0;
    while (idx + 1 < res.times.size() && res.times[idx] < t_probe) ++idx;
    const double v0 = 1.0 * k, vf = 1.1 * k;
    EXPECT_NEAR(v[idx], v0 + 0.632 * (vf - v0), 0.01);
}

TEST(Transient, RejectsBadOptions) {
    Circuit c;
    c.add<Resistor>("r1", c.node("a"), ground, 1e3);
    TranOptions opt;
    opt.dt = 0.0;
    EXPECT_THROW((void)run_transient(c, opt), InvalidInputError);
    opt.dt = 1e-6;
    opt.tstop = -1.0;
    EXPECT_THROW((void)run_transient(c, opt), InvalidInputError);
}

} // namespace
