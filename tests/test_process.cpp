// Unit tests for src/process: nominal card, variation spec, corners and the
// Monte Carlo sampler (including the Pelgrom area law).

#include <gtest/gtest.h>

#include <cmath>

#include "process/process_card.hpp"
#include "process/sampler.hpp"
#include "process/variation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace ypm;
using namespace ypm::process;

TEST(ProcessCard, C35NominalValuesAreSane) {
    const ProcessCard card = ProcessCard::c35();
    EXPECT_DOUBLE_EQ(card.vdd, 3.3);
    EXPECT_GT(card.nmos.kp, card.pmos.kp); // electrons faster than holes
    EXPECT_GT(card.pmos.vth0, card.nmos.vth0);
    EXPECT_NEAR(card.nmos.tox, 7.6e-9, 1e-12);
}

TEST(ProcessCard, CoxFollowsFromTox) {
    MosModelParams p;
    p.tox = 7.6e-9;
    EXPECT_NEAR(p.cox(), 3.45e-11 / 7.6e-9, 1e-6);
    p.tox = 3.8e-9;
    EXPECT_NEAR(p.cox(), 2.0 * 3.45e-11 / 7.6e-9, 1e-5);
}

TEST(Corner, StringRoundTrip) {
    for (Corner c : {Corner::tt, Corner::ff, Corner::ss, Corner::fs, Corner::sf})
        EXPECT_EQ(corner_from_string(to_string(c)), c);
    EXPECT_EQ(corner_from_string("FF"), Corner::ff);
    EXPECT_THROW((void)corner_from_string("zz"), InvalidInputError);
}

TEST(Corner, ShiftsHaveExpectedSigns) {
    EXPECT_DOUBLE_EQ(corner_shift(Corner::tt).nmos_speed, 0.0);
    EXPECT_GT(corner_shift(Corner::ff).nmos_speed, 0.0);
    EXPECT_LT(corner_shift(Corner::ss).pmos_speed, 0.0);
    EXPECT_GT(corner_shift(Corner::fs).nmos_speed, 0.0);
    EXPECT_LT(corner_shift(Corner::fs).pmos_speed, 0.0);
}

TEST(Sampler, CornerRealizationMatchesSpec) {
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    const auto& g = sampler.spec().global;
    const Realization ff = sampler.corner(Corner::ff);
    // Fast: threshold magnitude drops by 3 sigma, KP rises by 3 sigma.
    EXPECT_NEAR(ff.global.dvth_n, -3.0 * g.sigma_vth_n, 1e-15);
    EXPECT_NEAR(ff.global.kp_scale_p, 1.0 + 3.0 * g.sigma_kp_rel_p, 1e-15);
    const Realization tt = sampler.corner(Corner::tt);
    EXPECT_DOUBLE_EQ(tt.global.dvth_n, 0.0);
    EXPECT_DOUBLE_EQ(tt.global.kp_scale_n, 1.0);
}

TEST(Sampler, SampleIsDeterministicInRng) {
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    const std::vector<MosGeometry> devs = {{"m1", false, 20e-6, 1e-6},
                                           {"m3", true, 35e-6, 2e-6}};
    Rng a(42), b(42);
    const Realization ra = sampler.sample(a, devs);
    const Realization rb = sampler.sample(b, devs);
    EXPECT_DOUBLE_EQ(ra.global.dvth_n, rb.global.dvth_n);
    EXPECT_DOUBLE_EQ(ra.local.at("m1").dvth, rb.local.at("m1").dvth);
    EXPECT_DOUBLE_EQ(ra.local.at("m3").kp_scale, rb.local.at("m3").kp_scale);
}

TEST(Sampler, GlobalSpreadMatchesSigma) {
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    Rng rng(7);
    const std::vector<MosGeometry> none;
    double sum = 0.0, sum2 = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const Realization r = sampler.sample(rng, none);
        sum += r.global.dvth_n;
        sum2 += r.global.dvth_n * r.global.dvth_n;
    }
    const double mean = sum / n;
    const double sd = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(mean, 0.0, 5e-4);
    EXPECT_NEAR(sd, sampler.spec().global.sigma_vth_n, 6e-4);
}

TEST(Sampler, PelgromAreaScaling) {
    // sigma(dVth) must scale as 1/sqrt(WL): quadruple the area, halve sigma.
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    const std::vector<MosGeometry> devs = {{"small", false, 10e-6, 1e-6},
                                           {"big", false, 40e-6, 1e-6}};
    Rng rng(11);
    double s_small = 0.0, s_big = 0.0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        const Realization r = sampler.sample(rng, devs);
        s_small += r.local.at("small").dvth * r.local.at("small").dvth;
        s_big += r.local.at("big").dvth * r.local.at("big").dvth;
    }
    const double ratio = std::sqrt(s_small / n) / std::sqrt(s_big / n);
    EXPECT_NEAR(ratio, 2.0, 0.12);
}

TEST(Sampler, DeltaForCombinesGlobalAndLocal) {
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    const std::vector<MosGeometry> devs = {{"m1", false, 20e-6, 1e-6}};
    Rng rng(3);
    const Realization r = sampler.sample(rng, devs);
    const MosDelta total = r.delta_for("m1", false);
    EXPECT_NEAR(total.dvth, r.global.dvth_n + r.local.at("m1").dvth, 1e-15);
    EXPECT_NEAR(total.kp_scale,
                r.global.kp_scale_n * r.local.at("m1").kp_scale, 1e-15);
    // Unknown device: global only.
    const MosDelta global_only = r.delta_for("nonexistent", false);
    EXPECT_DOUBLE_EQ(global_only.dvth, r.global.dvth_n);
}

TEST(Sampler, PolaritySelectsCorrectGlobals) {
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    Rng rng(5);
    const Realization r = sampler.sample(rng, {});
    EXPECT_DOUBLE_EQ(r.delta_for("x", false).dvth, r.global.dvth_n);
    EXPECT_DOUBLE_EQ(r.delta_for("x", true).dvth, r.global.dvth_p);
}

TEST(Sampler, RejectsBadGeometry) {
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    Rng rng(1);
    const std::vector<MosGeometry> bad = {{"m1", false, 0.0, 1e-6}};
    EXPECT_THROW((void)sampler.sample(rng, bad), InvalidInputError);
}

TEST(Sampler, ToxVariationMovesCoxInversely) {
    // cox_scale must be anti-correlated with the tox draw: thicker oxide,
    // smaller Cox. Verified statistically via the mean of 1/cox_scale - 1.
    const ProcessSampler sampler(ProcessCard::c35(), VariationSpec::c35());
    Rng rng(13);
    int above = 0, below = 0;
    for (int i = 0; i < 2000; ++i) {
        const Realization r = sampler.sample(rng, {});
        if (r.global.cox_scale > 1.0) ++above;
        else ++below;
    }
    // Symmetric-ish distribution around 1.
    EXPECT_GT(above, 700);
    EXPECT_GT(below, 700);
}

} // namespace
