// Tests for the worst-case corner screening and the finite-difference
// sensitivity report (designer-facing diagnostics layered on the flow).

#include <gtest/gtest.h>

#include <cmath>

#include "core/corners.hpp"
#include "core/sensitivity.hpp"
#include "eval/engine.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::core;

TEST(Corners, SweepCoversAllFiveCorners) {
    const circuits::OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    const CornerSweep sweep = run_corner_sweep(ev, circuits::OtaSizing{}, sampler);
    ASSERT_EQ(sweep.points.size(), 5u);
    EXPECT_EQ(sweep.points.front().corner, process::Corner::tt);
    for (const auto& p : sweep.points) EXPECT_TRUE(p.valid);
}

TEST(Corners, TypicalInsideTheSpread) {
    const circuits::OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    const CornerSweep sweep = run_corner_sweep(ev, circuits::OtaSizing{}, sampler);
    const auto& tt = sweep.at(process::Corner::tt);
    EXPECT_GE(tt.gain_db, sweep.gain_min);
    EXPECT_LE(tt.gain_db, sweep.gain_max);
    EXPECT_GE(tt.pm_deg, sweep.pm_min);
    EXPECT_LE(tt.pm_deg, sweep.pm_max);
    // +/-3 sigma corners must actually spread the performance.
    EXPECT_GT(sweep.gain_max - sweep.gain_min, 0.0);
    EXPECT_GT(sweep.dgain_halfspread_pct, 0.0);
}

TEST(Corners, SpreadBracketsGlobalVariationScale) {
    // The corner half-spread is a +/-3 sigma construct of the *global*
    // component, so it should land within an order of magnitude of the MC
    // Δ (which adds mismatch): sanity band, not equality.
    const circuits::OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    const CornerSweep sweep = run_corner_sweep(ev, circuits::OtaSizing{}, sampler);
    EXPECT_GT(sweep.dgain_halfspread_pct, 0.01);
    EXPECT_LT(sweep.dgain_halfspread_pct, 10.0);
}

TEST(Corners, AtThrowsForMissingCorner) {
    CornerSweep empty;
    EXPECT_THROW((void)empty.at(process::Corner::ff), InvalidInputError);
}

TEST(Sensitivity, ReportCoversAllParameters) {
    const circuits::OtaEvaluator ev;
    const SensitivityReport report = compute_sensitivities(ev, circuits::OtaSizing{});
    ASSERT_EQ(report.parameters.size(), 8u);
    EXPECT_GT(report.gain_db, 40.0);
    for (const auto& p : report.parameters) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.value, 0.0);
        EXPECT_TRUE(std::isfinite(p.gain_elasticity));
        EXPECT_TRUE(std::isfinite(p.pm_elasticity));
    }
}

TEST(Sensitivity, MirrorLengthDominatesGain) {
    // Gain rises with L1 (less channel-length modulation at the output
    // mirror); the report must surface l1 among the strongest gain knobs.
    const circuits::OtaEvaluator ev;
    const SensitivityReport report = compute_sensitivities(ev, circuits::OtaSizing{});
    double l1_gain = 0.0;
    double max_gain = 0.0;
    for (const auto& p : report.parameters) {
        if (p.name == "l1") l1_gain = std::fabs(p.gain_elasticity);
        max_gain = std::max(max_gain, std::fabs(p.gain_elasticity));
    }
    EXPECT_GT(l1_gain, 0.0);
    EXPECT_GE(l1_gain, 0.3 * max_gain);
}

TEST(Sensitivity, W1MovesPhaseMarginDown) {
    // Widening the mirror outputs (W1) raises B and costs PM - the
    // trade-off behind the paper's Pareto front must show as a negative
    // PM elasticity.
    const circuits::OtaEvaluator ev;
    const SensitivityReport report = compute_sensitivities(ev, circuits::OtaSizing{});
    for (const auto& p : report.parameters) {
        if (p.name == "w1") {
            EXPECT_LT(p.pm_elasticity, 0.0);
        }
    }
}

TEST(Sensitivity, RejectsBadStep) {
    const circuits::OtaEvaluator ev;
    EXPECT_THROW((void)compute_sensitivities(ev, circuits::OtaSizing{}, 0.0),
                 InvalidInputError);
    EXPECT_THROW((void)compute_sensitivities(ev, circuits::OtaSizing{}, 0.5),
                 InvalidInputError);
}

TEST(Corners, EngineSweepMatchesLegacyBitExactly) {
    const circuits::OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    const CornerSweep legacy = run_corner_sweep(ev, circuits::OtaSizing{}, sampler);

    eval::Engine engine;
    const CornerSweep via_engine =
        run_corner_sweep(engine, ev, circuits::OtaSizing{}, sampler);
    ASSERT_EQ(via_engine.points.size(), legacy.points.size());
    for (std::size_t i = 0; i < legacy.points.size(); ++i) {
        EXPECT_EQ(via_engine.points[i].corner, legacy.points[i].corner);
        EXPECT_EQ(via_engine.points[i].valid, legacy.points[i].valid);
        EXPECT_DOUBLE_EQ(via_engine.points[i].gain_db, legacy.points[i].gain_db);
        EXPECT_DOUBLE_EQ(via_engine.points[i].pm_deg, legacy.points[i].pm_deg);
    }
    EXPECT_DOUBLE_EQ(via_engine.dgain_halfspread_pct, legacy.dgain_halfspread_pct);
    EXPECT_EQ(engine.counters().evaluations, 5u);

    // A repeated sweep of the same sizing is served from the cache.
    const CornerSweep again = run_corner_sweep(engine, ev, circuits::OtaSizing{}, sampler);
    EXPECT_EQ(engine.counters().evaluations, 5u);
    EXPECT_EQ(engine.counters().cache_hits, 5u);
    EXPECT_DOUBLE_EQ(again.gain_min, via_engine.gain_min);
}

TEST(Sensitivity, EngineReportMatchesLegacyBitExactly) {
    const circuits::OtaEvaluator ev;
    const SensitivityReport legacy = compute_sensitivities(ev, circuits::OtaSizing{});

    eval::Engine engine;
    const SensitivityReport via_engine =
        compute_sensitivities(engine, ev, circuits::OtaSizing{});
    EXPECT_DOUBLE_EQ(via_engine.gain_db, legacy.gain_db);
    EXPECT_DOUBLE_EQ(via_engine.pm_deg, legacy.pm_deg);
    ASSERT_EQ(via_engine.parameters.size(), legacy.parameters.size());
    for (std::size_t i = 0; i < legacy.parameters.size(); ++i) {
        EXPECT_EQ(via_engine.parameters[i].name, legacy.parameters[i].name);
        EXPECT_DOUBLE_EQ(via_engine.parameters[i].gain_elasticity,
                         legacy.parameters[i].gain_elasticity);
        EXPECT_DOUBLE_EQ(via_engine.parameters[i].pm_elasticity,
                         legacy.parameters[i].pm_elasticity);
    }
    // Nominal + 2 probes per parameter, all submitted as one batch.
    EXPECT_EQ(engine.counters().requests, 1u + 2u * legacy.parameters.size());
}

TEST(Sensitivity, DominantAccessors) {
    const circuits::OtaEvaluator ev;
    const SensitivityReport report = compute_sensitivities(ev, circuits::OtaSizing{});
    const auto& g = report.dominant_for_gain();
    const auto& p = report.dominant_for_pm();
    for (const auto& q : report.parameters) {
        EXPECT_GE(std::fabs(g.gain_elasticity), std::fabs(q.gain_elasticity));
        EXPECT_GE(std::fabs(p.pm_elasticity), std::fabs(q.pm_elasticity));
    }
}

} // namespace
