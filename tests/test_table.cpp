// Unit tests for src/table: splines (the paper's eq. 3 machinery), control
// strings ("3E"), table models, .tbl I/O and the Pareto-front table.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "table/control_string.hpp"
#include "table/pareto_table.hpp"
#include "table/spline.hpp"
#include "table/table_model.hpp"
#include "table/tbl_io.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace {

using namespace ypm;
using namespace ypm::table;

std::vector<double> grid(double a, double b, std::size_t n) {
    return mathx::linspace(a, b, n);
}

// ---------------------------------------------------------------- splines

TEST(LinearInterp, ExactOnLines) {
    LinearInterp f({0.0, 1.0, 3.0}, {1.0, 3.0, 7.0}); // y = 2x + 1
    EXPECT_DOUBLE_EQ(f.eval(0.5), 2.0);
    EXPECT_DOUBLE_EQ(f.eval(2.0), 5.0);
    EXPECT_DOUBLE_EQ(f.derivative(2.5), 2.0);
}

TEST(LinearInterp, RejectsBadData) {
    EXPECT_THROW(LinearInterp({0.0}, {1.0}), InvalidInputError);
    EXPECT_THROW(LinearInterp({0.0, 0.0}, {1.0, 2.0}), InvalidInputError);
    EXPECT_THROW(LinearInterp({1.0, 0.0}, {1.0, 2.0}), InvalidInputError);
    EXPECT_THROW(LinearInterp({0.0, 1.0}, {1.0}), InvalidInputError);
}

TEST(QuadraticSpline, ExactOnQuadratics) {
    // y = x^2 over a fine grid: a C1 quadratic spline reproduces it exactly
    // once the initial slope matches - use a dense grid and check interior.
    const auto xs = grid(0.0, 4.0, 33);
    std::vector<double> ys;
    for (double x : xs) ys.push_back(x * x);
    QuadraticSpline f(xs, ys);
    for (double x : {0.6, 1.7, 2.9, 3.6})
        EXPECT_NEAR(f.eval(x), x * x, 2e-2);
}

TEST(QuadraticSpline, InterpolatesKnots) {
    QuadraticSpline f({0.0, 1.0, 2.0, 3.0}, {1.0, -1.0, 4.0, 2.0});
    EXPECT_DOUBLE_EQ(f.eval(0.0), 1.0);
    EXPECT_DOUBLE_EQ(f.eval(1.0), -1.0);
    EXPECT_DOUBLE_EQ(f.eval(2.0), 4.0);
    EXPECT_DOUBLE_EQ(f.eval(3.0), 2.0);
}

TEST(CubicSpline, InterpolatesKnots) {
    CubicSpline f({0.0, 1.0, 2.5, 4.0}, {0.0, 2.0, -1.0, 3.0});
    EXPECT_NEAR(f.eval(0.0), 0.0, 1e-12);
    EXPECT_NEAR(f.eval(1.0), 2.0, 1e-12);
    EXPECT_NEAR(f.eval(2.5), -1.0, 1e-12);
    EXPECT_NEAR(f.eval(4.0), 3.0, 1e-12);
}

TEST(CubicSpline, NaturalEndsHaveZeroCurvature) {
    CubicSpline f(grid(0.0, 5.0, 9), {1, 4, 2, 6, 3, 7, 2, 8, 5},
                  CubicBc::natural);
    EXPECT_NEAR(f.second_derivative(0.0), 0.0, 1e-9);
    EXPECT_NEAR(f.second_derivative(5.0), 0.0, 1e-9);
}

TEST(CubicSpline, NotAKnotReproducesCubicExactly) {
    // S(x) = x^3 - 2x^2 + x - 5 must be reproduced exactly by a not-a-knot
    // cubic spline (it is a single cubic).
    auto poly = [](double x) { return x * x * x - 2.0 * x * x + x - 5.0; };
    const auto xs = grid(-2.0, 3.0, 11);
    std::vector<double> ys;
    for (double x : xs) ys.push_back(poly(x));
    CubicSpline f(xs, ys, CubicBc::not_a_knot);
    for (double x : {-1.7, -0.3, 0.9, 1.4, 2.8})
        EXPECT_NEAR(f.eval(x), poly(x), 1e-9);
}

TEST(CubicSpline, ConvergesOnSmoothFunction) {
    // Interpolation error for sin(x) should drop roughly like h^4.
    auto err = [](std::size_t n) {
        const auto xs = grid(0.0, mathx::pi, n);
        std::vector<double> ys;
        for (double x : xs) ys.push_back(std::sin(x));
        CubicSpline f(xs, ys);
        double worst = 0.0;
        for (double x = 0.05; x < mathx::pi; x += 0.013)
            worst = std::max(worst, std::fabs(f.eval(x) - std::sin(x)));
        return worst;
    };
    const double e1 = err(9);
    const double e2 = err(17);
    // Halving h should reduce error by ~16x; allow generous slack (the
    // natural end condition costs accuracy near the boundary).
    EXPECT_LT(e2, e1 / 4.0);
}

TEST(CubicSpline, CoefficientsMatchEquation3) {
    // coeffs() must satisfy S_i(x) = a(x-xi)^3 + b(x-xi)^2 + c(x-xi) + d.
    CubicSpline f({0.0, 1.0, 2.0, 3.0}, {1.0, 2.0, 0.0, 1.0});
    for (std::size_t i = 0; i < f.intervals(); ++i) {
        const auto k = f.coeffs(i);
        const double xi = static_cast<double>(i);
        for (double t : {0.1, 0.5, 0.9}) {
            const double x = xi + t;
            const double manual = ((k.a * t + k.b) * t + k.c) * t + k.d;
            EXPECT_NEAR(f.eval(x), manual, 1e-12);
        }
    }
}

TEST(CubicSpline, DerivativeMatchesFiniteDifference) {
    CubicSpline f(grid(0.0, 2.0, 9), {0, 1, 0.5, 2, 1.5, 3, 2.5, 4, 3});
    const double h = 1e-6;
    for (double x : {0.3, 0.9, 1.6}) {
        const double fd = (f.eval(x + h) - f.eval(x - h)) / (2.0 * h);
        EXPECT_NEAR(f.derivative(x), fd, 1e-5);
    }
}

TEST(MakeInterpolant, DegradesGracefully) {
    // 2 points: always linear; 3 points: cubic request becomes quadratic.
    auto two = make_interpolant(3, {0.0, 1.0}, {0.0, 1.0});
    EXPECT_EQ(two->degree(), 1);
    auto three = make_interpolant(3, {0.0, 1.0, 2.0}, {0.0, 1.0, 4.0});
    EXPECT_EQ(three->degree(), 2);
    auto four = make_interpolant(3, {0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0});
    EXPECT_EQ(four->degree(), 3);
    EXPECT_THROW((void)make_interpolant(4, {0.0, 1.0}, {0.0, 1.0}),
                 InvalidInputError);
}

// --------------------------------------------------------- control string

TEST(ControlString, ParsesPaperForm) {
    const ControlString cs("3E");
    EXPECT_EQ(cs.dimensions(), 1u);
    EXPECT_EQ(cs.dim(0).degree, 3);
    EXPECT_EQ(cs.dim(0).below, Extrapolation::error);
    EXPECT_EQ(cs.dim(0).above, Extrapolation::error);
}

TEST(ControlString, ParsesTwoDimensional) {
    const ControlString cs("3E,3E");
    EXPECT_EQ(cs.dimensions(), 2u);
    EXPECT_EQ(cs.dim(1).degree, 3);
    EXPECT_EQ(cs.dim(1).below, Extrapolation::error);
}

TEST(ControlString, AsymmetricExtrapolation) {
    const ControlString cs("2CL");
    EXPECT_EQ(cs.dim(0).degree, 2);
    EXPECT_EQ(cs.dim(0).below, Extrapolation::constant);
    EXPECT_EQ(cs.dim(0).above, Extrapolation::linear);
}

TEST(ControlString, DefaultsAreLinearDegree1) {
    const ControlString cs("");
    EXPECT_EQ(cs.dim(0).degree, 1);
    EXPECT_EQ(cs.dim(0).below, Extrapolation::linear);
}

TEST(ControlString, MissingFieldsRepeatLast) {
    const ControlString cs("3E");
    EXPECT_EQ(cs.dim(5).degree, 3);
    EXPECT_EQ(cs.dim(5).above, Extrapolation::error);
}

TEST(ControlString, RoundTripsToString) {
    for (const char* s : {"3E", "1C", "2CL", "3E,1L", "3EC"})
        EXPECT_EQ(ControlString(s).to_string(), s);
}

TEST(ControlString, RejectsBadInput) {
    EXPECT_THROW(ControlString("4E"), InvalidInputError);
    EXPECT_THROW(ControlString("3X"), InvalidInputError);
    EXPECT_THROW(ControlString("3CLE"), InvalidInputError);
    EXPECT_THROW(ControlString("0E"), InvalidInputError);
}

// ------------------------------------------------------------ TableModel1d

TEST(TableModel1d, SortsAndMergesDuplicates) {
    // Unsorted input with a duplicated abscissa (values averaged).
    TableModel1d t({2.0, 0.0, 1.0, 1.0}, {4.0, 0.0, 1.0, 3.0},
                   ControlString("1E"));
    EXPECT_EQ(t.samples(), 3u);
    EXPECT_DOUBLE_EQ(t.eval(1.0), 2.0); // (1+3)/2
    EXPECT_DOUBLE_EQ(t.eval(0.0), 0.0);
}

TEST(TableModel1d, ErrorExtrapolationThrows) {
    TableModel1d t({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0}, ControlString("3E"));
    EXPECT_NO_THROW((void)t.eval(0.0));
    EXPECT_NO_THROW((void)t.eval(3.0));
    EXPECT_THROW((void)t.eval(-0.1), RangeError);
    EXPECT_THROW((void)t.eval(3.1), RangeError);
}

TEST(TableModel1d, ConstantExtrapolationClamps) {
    TableModel1d t({0.0, 1.0, 2.0}, {5.0, 6.0, 9.0}, ControlString("1C"));
    EXPECT_DOUBLE_EQ(t.eval(-10.0), 5.0);
    EXPECT_DOUBLE_EQ(t.eval(10.0), 9.0);
    EXPECT_DOUBLE_EQ(t.derivative(-10.0), 0.0);
}

TEST(TableModel1d, LinearExtrapolationUsesEndSlope) {
    TableModel1d t({0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}, ControlString("1L"));
    EXPECT_NEAR(t.eval(3.0), 3.0, 1e-12);
    EXPECT_NEAR(t.eval(-1.0), -1.0, 1e-12);
}

TEST(TableModel1d, CubicMatchesUnderlyingFunction) {
    const auto xs = grid(0.0, 2.0, 21);
    std::vector<double> ys;
    for (double x : xs) ys.push_back(std::exp(x));
    TableModel1d t(xs, ys, ControlString("3E"));
    // Natural-spline end conditions dominate the error near the boundary.
    for (double x : {0.15, 0.77, 1.33, 1.91})
        EXPECT_NEAR(t.eval(x), std::exp(x), 1e-3);
}

TEST(TableModel1d, NeedsTwoDistinctSamples) {
    EXPECT_THROW(TableModel1d({1.0, 1.0}, {2.0, 3.0}), InvalidInputError);
}

// ------------------------------------------------------------ TableModel2d

TEST(TableModel2d, ExactOnBilinearWithLinearControl) {
    // f(x, y) = 2x + 3y + 1.
    const auto xs = grid(0.0, 2.0, 3);
    const auto ys = grid(0.0, 3.0, 4);
    std::vector<double> v;
    for (double x : xs)
        for (double y : ys) v.push_back(2.0 * x + 3.0 * y + 1.0);
    TableModel2d t(xs, ys, v, ControlString("1E,1E"));
    EXPECT_NEAR(t.eval(0.5, 1.5), 2.0 * 0.5 + 3.0 * 1.5 + 1.0, 1e-12);
    EXPECT_NEAR(t.eval(1.9, 0.1), 2.0 * 1.9 + 3.0 * 0.1 + 1.0, 1e-12);
}

TEST(TableModel2d, CubicApproximatesSmoothSurface) {
    const auto xs = grid(0.0, 1.0, 9);
    const auto ys = grid(0.0, 1.0, 9);
    std::vector<double> v;
    for (double x : xs)
        for (double y : ys) v.push_back(std::sin(3.0 * x) * std::cos(2.0 * y));
    TableModel2d t(xs, ys, v, ControlString("3E,3E"));
    for (double x : {0.21, 0.55, 0.83})
        for (double y : {0.13, 0.49, 0.91})
            EXPECT_NEAR(t.eval(x, y), std::sin(3.0 * x) * std::cos(2.0 * y), 5e-3);
}

TEST(TableModel2d, PerAxisExtrapolationPolicies) {
    const auto xs = grid(0.0, 1.0, 3);
    const auto ys = grid(0.0, 1.0, 3);
    std::vector<double> v(9, 1.0);
    TableModel2d t(xs, ys, v, ControlString("1E,1C"));
    EXPECT_NO_THROW((void)t.eval(0.5, 5.0)); // y clamps
    EXPECT_THROW((void)t.eval(5.0, 0.5), RangeError); // x errors
}

TEST(TableModel2d, RejectsRaggedData) {
    EXPECT_THROW(TableModel2d({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0}),
                 InvalidInputError);
    EXPECT_THROW(TableModel2d({1.0, 0.0}, {0.0, 1.0}, {1, 2, 3, 4}),
                 InvalidInputError);
}

// ----------------------------------------------------------------- tbl io

TEST(TblIo, ParsesCommentsAndValues) {
    const auto d = parse_tbl("# header\n0 1\n1 2.5\n* spice comment\n2 4\n");
    EXPECT_EQ(d.coord_columns, 1u);
    ASSERT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.coords[1][0], 1.0);
    EXPECT_DOUBLE_EQ(d.values[2], 4.0);
}

TEST(TblIo, ParsesEngineeringSuffixes) {
    const auto d = parse_tbl("10u 1k\n20u 2k\n");
    EXPECT_DOUBLE_EQ(d.coords[0][0], 10e-6);
    EXPECT_DOUBLE_EQ(d.values[1], 2000.0);
}

TEST(TblIo, RejectsRaggedRows) {
    EXPECT_THROW((void)parse_tbl("0 1\n1 2 3\n"), InvalidInputError);
    EXPECT_THROW((void)parse_tbl("justone\n"), InvalidInputError);
    EXPECT_THROW((void)parse_tbl("# only comments\n"), InvalidInputError);
}

TEST(TblIo, WriteReadRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "ypm_test_rt.tbl";
    TblData d = make_tbl_2d({50.0, 50.5, 51.0}, {76.0, 75.5, 75.0},
                            {1e-6, 2e-6, 3e-6});
    write_tbl(path.string(), d, {"roundtrip test"});
    const auto back = read_tbl(path.string());
    ASSERT_EQ(back.samples(), 3u);
    EXPECT_EQ(back.coord_columns, 2u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(back.coords[i][0], d.coords[i][0]);
        EXPECT_DOUBLE_EQ(back.coords[i][1], d.coords[i][1]);
        EXPECT_DOUBLE_EQ(back.values[i], d.values[i]);
    }
    std::filesystem::remove(path);
}

TEST(TblIo, ReadMissingFileThrows) {
    EXPECT_THROW((void)read_tbl("/nonexistent/nowhere.tbl"), IoError);
}

TEST(TblIo, Make1dValidatesSizes) {
    EXPECT_THROW((void)make_tbl_1d({1.0, 2.0}, {1.0}), InvalidInputError);
}

// ------------------------------------------------------------ ParetoTable

std::vector<FrontPoint> synthetic_front(std::size_t n) {
    // gain rises 50 -> 60, pm falls 85 -> 55; payload = two smooth params.
    std::vector<FrontPoint> pts;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / (n - 1);
        FrontPoint p;
        p.obj0 = 50.0 + 10.0 * t;
        p.obj1 = 85.0 - 30.0 * t * t;
        p.payload = {10e-6 + 50e-6 * t, 4e-6 - 3e-6 * t};
        pts.push_back(std::move(p));
    }
    return pts;
}

TEST(ParetoTable, InterpolatesObjectivesAlongFront) {
    ParetoTable t({"w", "l"}, synthetic_front(21));
    EXPECT_NEAR(t.obj0_at(0.0), 50.0, 1e-9);
    EXPECT_NEAR(t.obj0_at(1.0), 60.0, 1e-9);
    EXPECT_NEAR(t.obj1_at(0.0), 85.0, 1e-9);
    EXPECT_NEAR(t.obj1_at(1.0), 55.0, 1e-9);
}

TEST(ParetoTable, SAtObj0InvertsMonotonically) {
    ParetoTable t({"w", "l"}, synthetic_front(21));
    for (double g : {51.0, 54.0, 58.5}) {
        const double s = t.s_at_obj0(g);
        EXPECT_NEAR(t.obj0_at(s), g, 1e-6);
    }
    EXPECT_DOUBLE_EQ(t.s_at_obj0(40.0), 0.0); // clamp below
    EXPECT_DOUBLE_EQ(t.s_at_obj0(70.0), 1.0); // clamp above
}

TEST(ParetoTable, ProjectionOfFrontPointIsItself) {
    ParetoTable t({"w", "l"}, synthetic_front(41));
    const double s = 0.37;
    const double g = t.obj0_at(s);
    const double p = t.obj1_at(s);
    EXPECT_NEAR(t.project(g, p), s, 1e-3);
    EXPECT_NEAR(t.projection_residual(g, p), 0.0, 1e-6);
}

TEST(ParetoTable, LookupRecoversPayload) {
    ParetoTable t({"w", "l"}, synthetic_front(41));
    // Query exactly on the front at t = 0.5: w = 35u, l = 2.5u (by
    // construction of synthetic_front with s proportional to t only
    // approximately; use the front's own coordinates).
    const double s = 0.5;
    const auto vals = t.lookup(t.obj0_at(s), t.obj1_at(s));
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_NEAR(vals[0], t.payload_at(0, s), 1e-7);
    EXPECT_NEAR(vals[1], t.payload_at(1, s), 1e-7);
}

TEST(ParetoTable, OffFrontQueryHasResidual) {
    ParetoTable t({"w", "l"}, synthetic_front(21));
    EXPECT_GT(t.projection_residual(55.0, 95.0), 0.1); // far above the front
}

TEST(ParetoTable, MergesDuplicateGains) {
    auto pts = synthetic_front(10);
    pts.push_back(pts[4]); // exact duplicate
    ParetoTable t({"w", "l"}, pts);
    EXPECT_EQ(t.points(), 10u);
}

TEST(ParetoTable, RejectsDegenerateInput) {
    EXPECT_THROW(ParetoTable({"w"}, {}), InvalidInputError);
    auto two = synthetic_front(2);
    EXPECT_THROW(ParetoTable({"w", "l"}, two), InvalidInputError);
    auto bad = synthetic_front(5);
    bad[2].payload.pop_back();
    EXPECT_THROW(ParetoTable({"w", "l"}, bad), InvalidInputError);
}

} // namespace
