// Unit tests for the EKV-style MOSFET model: region classification,
// square-law limits, derivative consistency (the property the Newton solver
// relies on), polarity symmetry, source/drain swap and process deltas.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "process/process_card.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/mosfet.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::spice;

process::MosModelParams nmos_params() { return process::ProcessCard::c35().nmos; }
process::MosModelParams pmos_params() { return process::ProcessCard::c35().pmos; }

Mosfet make_nmos(double w = 20e-6, double l = 1e-6) {
    return Mosfet("m1", 1, 2, 3, 4, Mosfet::Type::nmos, nmos_params(), w, l);
}

TEST(Mosfet, RejectsNonPositiveGeometry) {
    EXPECT_THROW(Mosfet("m", 1, 2, 3, 4, Mosfet::Type::nmos, nmos_params(), 0.0,
                        1e-6),
                 InvalidInputError);
    EXPECT_THROW(make_nmos().set_geometry(1e-6, -1.0), InvalidInputError);
}

TEST(Mosfet, RegionClassification) {
    const Mosfet m = make_nmos();
    // Cutoff: VGS well below threshold.
    EXPECT_EQ(m.evaluate(1.0, 0.0, 0.0, 0.0).region, Mosfet::Region::cutoff);
    // Saturation: strong inversion, VDS > VDSAT.
    EXPECT_EQ(m.evaluate(2.0, 1.2, 0.0, 0.0).region, Mosfet::Region::saturation);
    // Triode: strong inversion, tiny VDS.
    EXPECT_EQ(m.evaluate(0.05, 2.0, 0.0, 0.0).region, Mosfet::Region::triode);
}

TEST(Mosfet, SquareLawInStrongInversion) {
    // In saturation the EKV interpolation approaches Id = beta/(2n)*vov^2.
    const Mosfet m = make_nmos(20e-6, 1e-6);
    const auto& p = nmos_params();
    const double vov = 0.6;
    const double vgs = p.vth0 + vov;
    const auto op = m.evaluate(2.5, vgs, 0.0, 0.0);
    const double beta = p.kp * 20.0;
    const double lambda = p.lambda_l / 1e-6;
    const double expected = beta / (2.0 * p.nfac) * vov * vov * (1.0 + lambda * 2.5);
    EXPECT_NEAR(op.id, expected, expected * 0.08);
}

TEST(Mosfet, SubthresholdSlopeIsExponential) {
    // One decade of current per n*Vt*ln(10) of gate drive below threshold.
    const Mosfet m = make_nmos();
    const auto& p = nmos_params();
    const double vt = 0.02585;
    const double step = p.nfac * vt * std::log(10.0);
    const double vgs0 = p.vth0 - 0.25;
    const double i0 = m.evaluate(1.0, vgs0, 0.0, 0.0).id;
    const double i1 = m.evaluate(1.0, vgs0 + step, 0.0, 0.0).id;
    EXPECT_NEAR(i1 / i0, 10.0, 1.5);
}

TEST(Mosfet, CurrentScalesWithAspectRatio) {
    const Mosfet narrow = make_nmos(10e-6, 1e-6);
    const Mosfet wide = make_nmos(40e-6, 1e-6);
    const double i_narrow = narrow.evaluate(2.0, 1.2, 0.0, 0.0).id;
    const double i_wide = wide.evaluate(2.0, 1.2, 0.0, 0.0).id;
    EXPECT_NEAR(i_wide / i_narrow, 4.0, 0.05);
}

TEST(Mosfet, ChannelLengthModulation) {
    // gds > 0 in saturation, and shorter channels have more of it.
    const Mosfet short_l = make_nmos(20e-6, 0.35e-6);
    const Mosfet long_l = make_nmos(20e-6, 4e-6);
    const auto op_s = short_l.evaluate(2.0, 1.2, 0.0, 0.0);
    const auto op_l = long_l.evaluate(2.0, 1.2, 0.0, 0.0);
    EXPECT_GT(op_s.gds(), 0.0);
    EXPECT_GT(op_l.gds(), 0.0);
    EXPECT_GT(op_s.gds() / op_s.id, op_l.gds() / op_l.id);
}

TEST(Mosfet, BodyEffectRaisesThreshold) {
    const Mosfet m = make_nmos();
    const auto no_bias = m.evaluate(2.0, 1.2, 0.0, 0.0);
    const auto reverse = m.evaluate(2.0, 1.2, 0.0, -1.0); // vsb = 1 V
    EXPECT_GT(reverse.vth, no_bias.vth);
    EXPECT_LT(reverse.id, no_bias.id);
    EXPECT_GT(no_bias.gmb(), 0.0);
}

TEST(Mosfet, PmosMirrorsNmos) {
    const Mosfet n = make_nmos();
    Mosfet p("mp", 1, 2, 3, 4, Mosfet::Type::pmos, nmos_params(), 20e-6, 1e-6);
    // Same model card, mirrored bias: currents must mirror exactly.
    const auto opn = n.evaluate(1.5, 1.2, 0.0, 0.0);
    const auto opp = p.evaluate(-1.5, -1.2, 0.0, 0.0);
    EXPECT_NEAR(opp.id, -opn.id, std::fabs(opn.id) * 1e-9);
    EXPECT_NEAR(opp.gm(), opn.gm(), opn.gm() * 1e-9);
}

TEST(Mosfet, ZeroVdsGivesZeroCurrent) {
    const Mosfet m = make_nmos();
    const auto op = m.evaluate(0.0, 1.5, 0.0, 0.0);
    EXPECT_NEAR(op.id, 0.0, 1e-12);
}

TEST(Mosfet, SourceDrainSwapAntisymmetry) {
    // Id(vd, vs) = -Id(vs, vd) with gate/bulk fixed (symmetric device).
    const Mosfet m = make_nmos();
    const auto fwd = m.evaluate(1.0, 1.8, 0.3, 0.0);
    const auto rev = m.evaluate(0.3, 1.8, 1.0, 0.0);
    EXPECT_NEAR(fwd.id, -rev.id, std::fabs(fwd.id) * 1e-9);
}

TEST(Mosfet, DeltaShiftsThresholdAndCurrent) {
    Mosfet m = make_nmos();
    const double base = m.evaluate(2.0, 1.2, 0.0, 0.0).id;
    process::MosDelta d;
    d.dvth = 0.05; // raise threshold
    m.apply_delta(d);
    EXPECT_LT(m.evaluate(2.0, 1.2, 0.0, 0.0).id, base);
    d.dvth = 0.0;
    d.kp_scale = 1.1;
    m.apply_delta(d);
    EXPECT_NEAR(m.evaluate(2.0, 1.2, 0.0, 0.0).id, base * 1.1, base * 0.01);
}

TEST(Mosfet, CapacitancesByRegion) {
    const Mosfet m = make_nmos();
    const auto sat = m.evaluate(2.0, 1.2, 0.0, 0.0);
    const auto triode = m.evaluate(0.05, 2.0, 0.0, 0.0);
    const auto off = m.evaluate(1.0, 0.0, 0.0, 0.0);
    // Saturation: cgs ~ 2/3 WLCox dominates cgd (overlap only).
    EXPECT_GT(sat.cgs, sat.cgd);
    // Triode: roughly balanced split.
    EXPECT_NEAR(triode.cgs, triode.cgd, triode.cgs * 0.1);
    // Cutoff: gate-bulk cap appears.
    EXPECT_GT(off.cgb, 0.0);
    EXPECT_DOUBLE_EQ(sat.cgb, 0.0);
    // Junctions always present.
    EXPECT_GT(sat.cdb, 0.0);
    EXPECT_GT(sat.csb, 0.0);
}

// Property test: analytic partials match finite differences everywhere the
// Newton solver will roam, including reverse (vds < 0) operation and both
// polarities.
class MosfetDerivatives
    : public ::testing::TestWithParam<std::tuple<double, double, double, int>> {};

TEST_P(MosfetDerivatives, MatchFiniteDifferences) {
    const auto [vg, vd, vb, type_i] = GetParam();
    const bool pmos = type_i == 1;
    const Mosfet m("m", 1, 2, 3, 4,
                   pmos ? Mosfet::Type::pmos : Mosfet::Type::nmos,
                   pmos ? pmos_params() : nmos_params(), 25e-6, 0.8e-6);
    const double vs = 0.0;
    const auto op = m.evaluate(vd, vg, vs, vb);

    const double h = 1e-7;
    const double d_dg =
        (m.evaluate(vd, vg + h, vs, vb).id - m.evaluate(vd, vg - h, vs, vb).id) /
        (2.0 * h);
    const double d_dd =
        (m.evaluate(vd + h, vg, vs, vb).id - m.evaluate(vd - h, vg, vs, vb).id) /
        (2.0 * h);
    const double d_ds =
        (m.evaluate(vd, vg, vs + h, vb).id - m.evaluate(vd, vg, vs - h, vb).id) /
        (2.0 * h);
    const double d_db =
        (m.evaluate(vd, vg, vs, vb + h).id - m.evaluate(vd, vg, vs, vb - h).id) /
        (2.0 * h);

    const double scale = std::max({std::fabs(d_dg), std::fabs(d_dd),
                                   std::fabs(d_ds), std::fabs(d_db), 1e-9});
    EXPECT_NEAR(op.g_dg, d_dg, scale * 2e-3);
    EXPECT_NEAR(op.g_dd, d_dd, scale * 2e-3);
    EXPECT_NEAR(op.g_ds, d_ds, scale * 2e-3);
    EXPECT_NEAR(op.g_db, d_db, scale * 2e-3);
    // KCL shift invariance: partials sum to zero.
    EXPECT_NEAR(op.g_dg + op.g_dd + op.g_ds + op.g_db, 0.0, scale * 4e-3);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetDerivatives,
    ::testing::Combine(::testing::Values(-1.5, 0.3, 0.8, 1.5), // vg
                       ::testing::Values(-1.2, -0.2, 0.1, 1.0, 2.5), // vd
                       ::testing::Values(-0.5, 0.0),           // vb
                       ::testing::Values(0, 1)));              // nmos/pmos

TEST(Mosfet, DiodeConnectedSolvesInCircuit) {
    // Diode-connected NMOS fed by a current source: VGS settles where
    // Id = Ibias; a classic Newton workout.
    Circuit c;
    const NodeId g = c.node("g");
    c.add<CurrentSource>("ib", ground, g, 50e-6); // push 50 uA into g
    c.add<Mosfet>("m1", g, g, ground, ground, Mosfet::Type::nmos, nmos_params(),
                  20e-6, 1e-6);
    const Solution op = solve_op(c);
    const auto* m = dynamic_cast<const Mosfet*>(c.find_device("m1"));
    const auto info = m->op_info(op);
    EXPECT_NEAR(info.id, 50e-6, 1e-9);
    EXPECT_GT(op.voltage(g), nmos_params().vth0 * 0.8);
    EXPECT_LT(op.voltage(g), 1.5);
}

TEST(Mosfet, CommonSourceAmplifierDcTransfer) {
    // NMOS with resistive load: output falls as input rises.
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vdd", vdd, ground, 3.3);
    auto& vin = c.add<VoltageSource>("vin", in, ground, 0.8);
    c.add<Resistor>("rd", vdd, out, 20e3);
    c.add<Mosfet>("m1", out, in, ground, ground, Mosfet::Type::nmos,
                  nmos_params(), 10e-6, 1e-6);
    const Solution op1 = solve_op(c);
    vin.set_dc(1.0);
    const Solution op2 = solve_op(c);
    EXPECT_LT(op2.voltage(out), op1.voltage(out));
    EXPECT_GT(op1.voltage(out), 0.0);
    EXPECT_LT(op1.voltage(out), 3.3);
}

} // namespace
